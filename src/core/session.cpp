#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "net/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ballfit::core {

namespace {

/// FNV-1a accumulator for stage fingerprints. Doubles are mixed by bit
/// pattern, so a fingerprint match means the inputs were byte-identical —
/// exactly the contract the bit-identity guarantee needs.
class Fingerprint {
 public:
  void u64(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h_ ^= (v >> (8 * b)) & 0xffu;
      h_ *= 0x100000001b3ull;
    }
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void boolean(bool v) { u64(v ? 1u : 0u); }
  void flags(const std::vector<bool>& f) {
    u64(f.size());
    std::uint64_t acc = 0;
    int bits = 0;
    for (const bool x : f) {
      acc = (acc << 1) | (x ? 1u : 0u);
      if (++bits == 64) {
        u64(acc);
        acc = 0;
        bits = 0;
      }
    }
    if (bits > 0) u64(acc);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

/// Every UbfConfig field the per-node ball test reads, except the
/// degenerate vote — that one only reaches nodes without a usable frame,
/// which join every partial run, so it lives in the exact-hit key only.
void mix_ubf_core(Fingerprint& fp, const UbfConfig& c) {
  fp.f64(c.epsilon);
  fp.f64(c.radius_override);
  fp.f64(c.inside_tolerance);
  fp.f64(c.two_hop_inside_margin);
  fp.f64(c.measurement_error_hint);
  fp.f64(c.noise_margin_factor);
  fp.f64(c.noise_margin_cap);
  fp.u64(c.min_empty_balls);
  fp.f64(c.stress_gate_factor);
  fp.f64(c.stress_gate_floor);
  fp.boolean(c.cross_verify);
  fp.u64(c.verify_pool);
  fp.u64(c.scope == UbfConfig::EmptinessScope::kTwoHop ? 1u : 0u);
}

/// Every LocalizerConfig field. The whole config keys the Measure artifact
/// (the localizer object embeds it), so cached frames can never mix
/// equivalence tiers or optimization settings.
void mix_localizer_config(Fingerprint& fp,
                          const localization::LocalizerConfig& c) {
  fp.boolean(c.complete_missing_pairs);
  fp.f64(c.missing_pair_fallback);
  fp.u64(static_cast<std::uint64_t>(c.smacof_sweeps));
  fp.u64(static_cast<std::uint64_t>(c.mdsmap_sweeps));
  fp.u64(static_cast<std::uint64_t>(c.smacof_restarts));
  fp.u64(c.restart_seed);
  fp.boolean(c.topk_mds);
  fp.u64(c.topk_mds_threshold);
  fp.boolean(c.sparse_smacof);
  fp.boolean(c.use_edge_cache);
  fp.u64(static_cast<std::uint64_t>(c.tier));
  fp.boolean(c.warm_start);
  fp.boolean(c.adaptive_sweeps);
  fp.boolean(c.blocked_smacof);
  fp.f64(c.adaptive_floor);
  fp.u64(static_cast<std::uint64_t>(c.plateau_sweeps));
  fp.f64(c.plateau_rel_tol);
  fp.f64(c.plateau_guard);
  fp.u64(static_cast<std::uint64_t>(c.stress_stride));
  fp.u64(static_cast<std::uint64_t>(c.mds_eigen_iters));
  fp.f64(c.mds_eigen_tol);
  fp.f64(c.warm_accept_factor);
  fp.u64(c.warm_min_anchors);
  fp.f64(c.warm_min_coverage);
  fp.u64(c.batch_frames);
}

std::size_t count_marks(const std::vector<char>& mask) {
  return static_cast<std::size_t>(
      std::count(mask.begin(), mask.end(), static_cast<char>(1)));
}

void note_stage(const char* stage, const char* kind) {
  if (!obs::enabled()) return;
  obs::Registry::global()
      .counter(std::string("session.") + stage + "." + kind)
      .add(1);
}

// Per-stage RNG stream tags: each flood stage gets its own fresh
// channel-only fault model, so every protocol artifact is a pure function
// of (inputs, knobs, channel fingerprint) — never of how many stages ran
// before it. The tags keep the two streams decorrelated under one seed.
constexpr std::uint64_t kIffStreamTag = 0x1ff00d5ull;
constexpr std::uint64_t kGroupStreamTag = 0x6e0097ull;

/// The loss/duplication channel of `config`, with every crash mechanism
/// stripped (crashes act through the session alive-mask instead) and the
/// seed re-keyed for one stage's stream.
sim::FaultConfig channel_config(const sim::FaultConfig& config,
                                std::uint64_t stage_tag) {
  sim::FaultConfig channel;
  channel.drop_probability = config.drop_probability;
  channel.link_loss_max = config.link_loss_max;
  channel.duplicate_probability = config.duplicate_probability;
  std::uint64_t s = config.seed ^ stage_tag;
  channel.seed = splitmix64(s);
  return channel;
}

/// Requires a duplicate-free id list (the delta validation contract).
void require_unique(std::vector<net::NodeId> ids, const char* what) {
  std::sort(ids.begin(), ids.end());
  BALLFIT_REQUIRE(std::adjacent_find(ids.begin(), ids.end()) == ids.end(),
                  std::string("NetworkDelta: duplicate node id in ") + what);
}

}  // namespace

DetectionSession::DetectionSession(const net::Network& network)
    : network_(&network),
      alive_(network.num_nodes(), 1),
      num_alive_(network.num_nodes()),
      fault_dead_(network.num_nodes(), 0),
      frames_dirty_(network.num_nodes(), 0),
      ubf_dirty_(network.num_nodes(), 0) {}

DetectionSession::DetectionSession(net::Network& network)
    : DetectionSession(static_cast<const net::Network&>(network)) {
  mutable_network_ = &network;
}

void DetectionSession::apply(const NetworkDelta& delta) {
  const std::size_t n = network_->num_nodes();

  // --- Validate the whole delta before mutating anything, so a rejected
  // delta leaves the session (and the network) untouched.
  for (const net::NodeId v : delta.crashed) {
    BALLFIT_REQUIRE(v < n, "NetworkDelta: crashed node id out of range");
    BALLFIT_REQUIRE(alive_[v] != 0,
                    "NetworkDelta: node " + std::to_string(v) +
                        " is already dead — cannot crash it again");
  }
  for (const net::NodeId v : delta.revived) {
    BALLFIT_REQUIRE(v < n, "NetworkDelta: revived node id out of range");
    BALLFIT_REQUIRE(alive_[v] == 0,
                    "NetworkDelta: node " + std::to_string(v) +
                        " is alive — cannot revive it");
  }
  require_unique(delta.crashed, "crashed");
  require_unique(delta.revived, "revived");
  {
    std::vector<net::NodeId> moved_ids;
    moved_ids.reserve(delta.moved.size());
    for (const net::NodeMove& m : delta.moved) {
      BALLFIT_REQUIRE(m.node < n, "NetworkDelta: moved node id out of range");
      moved_ids.push_back(m.node);
    }
    require_unique(std::move(moved_ids), "moved");
  }
  BALLFIT_REQUIRE(delta.moved.empty() || mutable_network_ != nullptr,
                  "NetworkDelta contains moves but the session observes a "
                  "const network — construct the session with a mutable "
                  "net::Network to enable node motion");
  if (delta.empty()) return;

  // A frame's membership is a subset of its owner's two-hop neighborhood,
  // so only frames within two hops of a changed node can change; a node's
  // UBF flag additionally reads its one-hop witnesses' frames, adding one
  // hop. The reach is computed on the full adjacency (conservative
  // superset of any masked reach). A move changes which nodes are within
  // reach at all, so its dirty set is marked on BOTH the pre-move and the
  // post-move adjacency: every changed frame input involves the moved node
  // under one of the two.
  std::vector<net::NodeId> seeds;
  seeds.reserve(delta.crashed.size() + delta.revived.size() +
                delta.moved.size());
  if (!delta.moved.empty()) {
    for (const net::NodeMove& m : delta.moved) seeds.push_back(m.node);
    if (frames_valid_) net::mark_k_hop(*network_, seeds, 2, frames_dirty_);
    if (ubf_valid_) net::mark_k_hop(*network_, seeds, 3, ubf_dirty_);
    mutable_network_->apply_moves(delta.moved);
    ++topology_version_;
    measure_stale_ = true;
  }
  seeds.insert(seeds.end(), delta.crashed.begin(), delta.crashed.end());
  seeds.insert(seeds.end(), delta.revived.begin(), delta.revived.end());
  if (frames_valid_) net::mark_k_hop(*network_, seeds, 2, frames_dirty_);
  if (ubf_valid_) net::mark_k_hop(*network_, seeds, 3, ubf_dirty_);

  for (const net::NodeId v : delta.crashed) {
    alive_[v] = 0;
    --num_alive_;
  }
  for (const net::NodeId v : delta.revived) {
    alive_[v] = 1;
    ++num_alive_;
    // A user revive of a fault casualty clears the attribution: the node
    // stays up until the fault clock advances or the model is re-synced.
    fault_dead_[v] = 0;
  }
  ++alive_epoch_;
  masked_ = num_alive_ < n;

  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("session.delta.crashed").add(delta.crashed.size());
    reg.counter("session.delta.revived").add(delta.revived.size());
    reg.counter("session.delta.moved").add(delta.moved.size());
  }
}

void DetectionSession::apply_alive_diff(
    const std::vector<net::NodeId>& crashed,
    const std::vector<net::NodeId>& revived) {
  if (crashed.empty() && revived.empty()) return;
  std::vector<net::NodeId> seeds;
  seeds.reserve(crashed.size() + revived.size());
  seeds.insert(seeds.end(), crashed.begin(), crashed.end());
  seeds.insert(seeds.end(), revived.begin(), revived.end());
  if (frames_valid_) net::mark_k_hop(*network_, seeds, 2, frames_dirty_);
  if (ubf_valid_) net::mark_k_hop(*network_, seeds, 3, ubf_dirty_);
  for (const net::NodeId v : crashed) {
    alive_[v] = 0;
    --num_alive_;
  }
  for (const net::NodeId v : revived) {
    alive_[v] = 1;
    ++num_alive_;
  }
  ++alive_epoch_;
  masked_ = num_alive_ < network_->num_nodes();
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("session.delta.crashed").add(crashed.size());
    reg.counter("session.delta.revived").add(revived.size());
  }
}

void DetectionSession::ensure_fault_model(const sim::FaultConfig& config) {
  Fingerprint fp;
  fp.f64(config.drop_probability);
  fp.f64(config.link_loss_max);
  fp.f64(config.duplicate_probability);
  fp.f64(config.crash_fraction);
  fp.f64(config.crash_probability);
  // Schedule identity is order-stable: the model applies every entry whose
  // round arrives regardless of list order, so permuted/duplicated entries
  // describe the same fault stream and must fingerprint identically.
  auto schedule = config.crash_at_round;
  std::sort(schedule.begin(), schedule.end());
  schedule.erase(std::unique(schedule.begin(), schedule.end()),
                 schedule.end());
  fp.u64(schedule.size());
  for (const auto& [v, r] : schedule) {
    fp.u64(v);
    fp.u64(r);
  }
  fp.u64(config.seed);
  fp.u64(network_->num_nodes());
  if (fault_model_.has_value() && fault_cfg_fp_ == fp.value()) return;

  // New fault stream: fresh model (crash clock restarts at round 0).
  fault_model_.emplace(config, network_->num_nodes());
  fault_cfg_fp_ = fp.value();
  Fingerprint channel;
  channel.u64(config.seed);
  channel.f64(config.drop_probability);
  channel.f64(config.link_loss_max);
  channel.f64(config.duplicate_probability);
  fault_channel_fp_ = channel.value();
}

void DetectionSession::release_fault_model() {
  if (!fault_model_.has_value()) return;
  // Fault casualties do not outlive their model: a reliable run sees the
  // network the user deltas alone describe.
  std::vector<net::NodeId> revived;
  for (net::NodeId v = 0; v < fault_dead_.size(); ++v) {
    if (fault_dead_[v] != 0) {
      revived.push_back(v);
      fault_dead_[v] = 0;
    }
  }
  fault_model_.reset();
  fault_cfg_fp_ = 0;
  fault_channel_fp_ = 0;
  apply_alive_diff({}, revived);
}

NetworkDelta DetectionSession::sync_fault_state() {
  NetworkDelta delta = delta_from_fault_state(*this, *fault_model_);
  // The model only speaks for its own casualties: a node the user crashed
  // is "up" as far as the model knows, but must stay down here.
  std::erase_if(delta.revived, [&](net::NodeId v) {
    return fault_dead_[v] == 0;
  });
  for (const net::NodeId v : delta.crashed) fault_dead_[v] = 1;
  for (const net::NodeId v : delta.revived) fault_dead_[v] = 0;
  apply_alive_diff(delta.crashed, delta.revived);
  return delta;
}

NetworkDelta DetectionSession::advance_faults(std::size_t rounds) {
  BALLFIT_REQUIRE(fault_model_.has_value(),
                  "advance_faults: no fault model installed — run with an "
                  "active fault config first (a reliable run uninstalls it)");
  for (std::size_t i = 0; i < rounds; ++i) fault_model_->advance_round();
  return sync_fault_state();
}

void DetectionSession::run_ubf_stages(const PipelineConfig& config,
                                      const UbfConfig& ubf_config,
                                      unsigned threads,
                                      PipelineResult& result) {
  const std::size_t n = network_->num_nodes();
  const std::vector<char>* alive_mask = masked_ ? &alive_ : nullptr;

  if (config.use_true_coordinates) {
    // No Measure/Localize artifacts: the oracle reads true positions. The
    // artifact is keyed on the full config + the alive epoch; any topology
    // change recomputes it outright (the oracle sweep is cheap).
    Fingerprint core;
    core.u64(2);  // true-coordinates artifact tag
    mix_ubf_core(core, ubf_config);
    Fingerprint full;
    full.u64(core.value());
    full.boolean(ubf_config.degenerate_is_boundary);
    full.u64(alive_epoch_);
    if (ubf_valid_ && ubf_full_fp_ == full.value()) {
      ++stats_.ubf.cache_hits;
      note_stage("ubf", "cache_hits");
    } else {
      BALLFIT_SPAN("ubf");
      const UnitBallFitting ubf(*network_, ubf_config);
      // Confidence rides along only when someone is observing; it never
      // feeds back into the flags, so the artifact key ignores it.
      std::vector<float>* conf_out =
          obs::enabled() ? &ubf_confidence_ : nullptr;
      if (conf_out == nullptr) ubf_confidence_.clear();
      ubf_candidates_ = ubf.detect_with_true_coordinates(
          &frame_fallbacks_, alive_mask, conf_out);
      ubf_flags_.assign(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        ubf_flags_[i] = ubf_candidates_[i] ? 1 : 0;
      }
      ubf_full_fp_ = full.value();
      ubf_core_fp_ = 0;
      ubf_valid_ = true;
      ubf_partial_ok_ = false;  // partial updates are a frame-path feature
      std::fill(ubf_dirty_.begin(), ubf_dirty_.end(), 0);
      ++stats_.ubf.full_runs;
      note_stage("ubf", "full_runs");
    }
    result.ubf_candidates = ubf_candidates_;
    result.ubf_confidence = ubf_confidence_;
    result.frame_fallbacks = frame_fallbacks_;
    return;
  }

  // --- Measure: noise model + localizer (includes the per-edge
  // measurement cache). Keyed on (measurement_error, noise_seed) plus the
  // full localizer config — the localizer object embeds it, and every
  // downstream frame artifact chains off `measure_version_`, so runs at
  // different equivalence tiers (or any other localizer setting) can never
  // share cached frames.
  {
    Fingerprint fp;
    fp.f64(config.measurement_error);
    fp.u64(config.noise_seed);
    mix_localizer_config(fp, config.localizer);
    if (measure_valid_ && measure_fp_ == fp.value() && !measure_stale_) {
      ++stats_.measure.cache_hits;
      note_stage("measure", "cache_hits");
    } else if (measure_valid_ && measure_fp_ == fp.value()) {
      // Same noise law, moved geometry: re-materialize the per-edge cache
      // against the rebuilt CSR adjacency. The noise draw is keyed on
      // (seed, node-id pair), so every unmoved pair measures bit-identical
      // — measure_version_ stays put and frames outside the move's dirty
      // set remain valid.
      BALLFIT_SPAN("measurement");
      model_.emplace(*network_, config.measurement_error, config.noise_seed);
      localizer_.emplace(*network_, *model_, config.localizer);
      measure_stale_ = false;
      ++stats_.measure.partial_runs;
      note_stage("measure", "partial_runs");
    } else {
      BALLFIT_SPAN("measurement");
      model_.emplace(*network_, config.measurement_error, config.noise_seed);
      localizer_.emplace(*network_, *model_, config.localizer);
      measure_fp_ = fp.value();
      measure_valid_ = true;
      measure_stale_ = false;
      ++measure_version_;  // downstream keys reference the new artifact
      ++stats_.measure.full_runs;
      note_stage("measure", "full_runs");
    }
  }

  BALLFIT_SPAN("ubf");

  // --- Localize: one frame per node. Keyed on (measure artifact, scope)
  // plus the alive epoch; an epoch mismatch with a matching key re-embeds
  // the dirty neighborhoods only.
  const bool two_hop = ubf_config.scope == UbfConfig::EmptinessScope::kTwoHop;
  std::uint64_t frames_key = 0;
  {
    Fingerprint fp;
    fp.u64(measure_version_);
    fp.boolean(two_hop);
    frames_key = fp.value();
  }
  if (frames_valid_ && frames_key_ == frames_key &&
      frames_epoch_ == alive_epoch_) {
    ++stats_.localize.cache_hits;
    note_stage("localize", "cache_hits");
  } else {
    BALLFIT_SPAN("mds_frames");
    const localization::FrameScope scope = two_hop
                                               ? localization::FrameScope::kTwoHop
                                               : localization::FrameScope::kOneHop;
    // Same key + older epoch: the frames differ only inside the dirty
    // neighborhoods accumulated by apply(). Each frame is a pure function
    // of (network, model, scope, alive), so the partial rebuild is
    // bit-identical to a full one.
    if (frames_valid_ && frames_key_ == frames_key) {
      stats_.last_frames_rebuilt = count_marks(frames_dirty_);
      // A partial rebuild refreshes only the dirty frames, so its effort
      // stats describe a fragment; fold them into the artifact's totals
      // rather than replacing them.
      localization::FrameBuildStats partial;
      localization::build_all_frames(*localizer_, scope, frames_, threads,
                                     alive_mask, &frames_dirty_, &partial);
      loc_stats_.merge(partial);
      ++stats_.localize.partial_runs;
      note_stage("localize", "partial_runs");
      if (obs::enabled()) {
        obs::Registry::global()
            .gauge("session.frames_rebuilt")
            .set(static_cast<double>(stats_.last_frames_rebuilt));
      }
    } else {
      frames_.clear();
      loc_stats_ = {};
      localization::build_all_frames(*localizer_, scope, frames_, threads,
                                     alive_mask, nullptr, &loc_stats_);
      ++stats_.localize.full_runs;
      note_stage("localize", "full_runs");
    }
    frames_key_ = frames_key;
    frames_epoch_ = alive_epoch_;
    frames_valid_ = true;
    ++frames_version_;
    std::fill(frames_dirty_.begin(), frames_dirty_.end(), 0);
  }

  // Fallback count is a pure function of (frames, alive): the nodes that
  // would vote the degenerate default. Recounted here so cache hits report
  // the same value a fresh run would.
  frame_fallbacks_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (alive_[i] != 0 && !frames_[i].ok) ++frame_fallbacks_;
  }

  // --- UBF ball test + witness cross-verification.
  Fingerprint core;
  core.u64(1);  // frame-path artifact tag
  core.u64(frames_key_);
  mix_ubf_core(core, ubf_config);
  // With escalation on, confidence stops being pure telemetry — the effort
  // planner reads it — so the artifact key must distinguish escalate-on
  // builds (confidence always collected, full-sized) from escalate-off
  // ones (obs-gated, possibly absent). Keyed in the *core* key so an
  // escalate-on run never partial-resumes from a confidence-less artifact.
  core.boolean(config.escalate.enabled);
  Fingerprint full;
  full.u64(core.value());
  full.boolean(ubf_config.degenerate_is_boundary);
  full.u64(frames_version_);
  if (ubf_valid_ && ubf_full_fp_ == full.value()) {
    ++stats_.ubf.cache_hits;
    note_stage("ubf", "cache_hits");
  } else {
    const UnitBallFitting ubf(*network_, ubf_config);
    const bool partial = ubf_valid_ && ubf_partial_ok_ &&
                         ubf_core_fp_ == core.value() &&
                         ubf_flags_.size() == n;
    // Obs-gated confidence companion — forced on when the Escalate stage
    // will read it. A partial run can only update the entries it re-tests,
    // so it needs a full-sized carry-over; when the previous artifact had
    // no confidence (obs was off), start from zeros — the untested
    // remainder reads 0 ("not scored"), never garbage. (The escalate bit
    // lives in the core key, so an escalate-on partial never resumes from
    // a confidence-less artifact.)
    std::vector<float>* conf_out = nullptr;
    if (obs::enabled() || config.escalate.enabled) {
      if (ubf_confidence_.size() != n) ubf_confidence_.assign(n, 0.0f);
      conf_out = &ubf_confidence_;
    } else {
      ubf_confidence_.clear();
    }
    if (partial) {
      // Re-test the dirty neighborhoods plus every alive node without a
      // usable frame — the only readers of the degenerate vote, which the
      // core key deliberately omits.
      for (std::size_t i = 0; i < n; ++i) {
        if (alive_[i] != 0 && !frames_[i].ok) ubf_dirty_[i] = 1;
      }
      stats_.last_nodes_retested = count_marks(ubf_dirty_);
      ubf.update_flags_on_frames(frames_, ubf_flags_, alive_mask,
                                 &ubf_dirty_, threads, conf_out);
      ++stats_.ubf.partial_runs;
      note_stage("ubf", "partial_runs");
      if (obs::enabled()) {
        obs::Registry::global()
            .gauge("session.nodes_retested")
            .set(static_cast<double>(stats_.last_nodes_retested));
      }
    } else {
      ubf_flags_.assign(n, 0);
      ubf.update_flags_on_frames(frames_, ubf_flags_, alive_mask,
                                 /*run_mask=*/nullptr, threads, conf_out);
      ++stats_.ubf.full_runs;
      note_stage("ubf", "full_runs");
    }
    ubf_candidates_.assign(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      ubf_candidates_[i] = ubf_flags_[i] != 0;
    }
    ubf_full_fp_ = full.value();
    ubf_core_fp_ = core.value();
    ubf_valid_ = true;
    ubf_partial_ok_ = true;
    std::fill(ubf_dirty_.begin(), ubf_dirty_.end(), 0);
  }
  result.ubf_candidates = ubf_candidates_;
  result.ubf_confidence = ubf_confidence_;
  result.frame_fallbacks = frame_fallbacks_;
  result.localize_stats = loc_stats_;
}

bool DetectionSession::run_escalate_stage(const PipelineConfig& config,
                                          const UbfConfig& ubf_config,
                                          unsigned threads,
                                          PipelineResult& result) {
  if (!config.escalate.enabled || config.use_true_coordinates) {
    esc_valid_ = false;
    return false;
  }
  const std::size_t n = network_->num_nodes();

  // Everything the stage reads is covered by the UBF exact-hit key: the
  // frames via frames_version_, the confidence via the UBF knobs (and the
  // escalate bit in the core key guarantees it was collected), the alive
  // set via the frame rebuild. Only the escalation knobs are added.
  Fingerprint fp;
  fp.u64(ubf_full_fp_);
  fp.f64(config.escalate.margin);
  fp.f64(config.escalate.relax);
  if (esc_valid_ && esc_fp_ == fp.value()) {
    ++stats_.escalate.cache_hits;
    note_stage("escalate", "cache_hits");
  } else {
    BALLFIT_SPAN("escalate");
    const UnitBallFitting ubf(*network_, ubf_config);
    const std::vector<char>* alive_mask = masked_ ? &alive_ : nullptr;

    const EffortPlan plan = build_effort_plan(ubf_confidence_, frames_,
                                              alive_mask, ubf,
                                              config.escalate);
    esc_stats_ = {};
    esc_stats_.planned_cheap = plan.count(EffortClass::kCheap);
    esc_stats_.planned_default = plan.count(EffortClass::kDefault);
    esc_stats_.planned_full = plan.count(EffortClass::kFull);

    // Stress-gated nodes, recorded against the *first-pass* frames: these
    // abstained (confidence 0), so the fold-back below always adopts their
    // escalated verdict — the kFull re-embed is exactly their rescue path.
    std::vector<char> gated(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (frames_[i].ok && !ubf.frame_reliable(frames_[i].stress_rms)) {
        gated[i] = 1;
      }
    }

    std::vector<net::NodeId> seeds;
    for (std::size_t i = 0; i < n; ++i) {
      if (alive_[i] != 0 && plan.classes[i] == EffortClass::kFull) {
        seeds.push_back(static_cast<net::NodeId>(i));
      }
    }
    esc_stats_.escalated_nodes = seeds.size();

    // Start from the first-pass artifact; the masked re-runs below rewrite
    // only the retested entries. Confidence is full-sized by the
    // escalate-on contract of run_ubf_stages.
    esc_flags_ = ubf_flags_;
    esc_confidence_ = ubf_confidence_;

    if (!seeds.empty()) {
      // A marginal node's own embedding is the dominant input to its ball
      // test (the ball centers and the stress gate both read it), so the
      // rebuild set is exactly the seed frames, re-embedded at kFull. A
      // rebuilt frame influences the ball test of every node that reads
      // it — the owner plus its one-hop witnesses — hence retest =
      // rebuild reach + 1 hop, the Localize/UBF dirty-set discipline.
      // Wider rebuild reaches were measured and rejected: on fig1@0.35 a
      // 1-hop/2-hop pair spends 2.7x the total escalated sweeps (81% vs
      // 32% of a flat kFull run) with no accuracy gain, because witness
      // frames re-run at kFull land in the same basin they left.
      std::vector<char> rebuild(n, 0);
      std::vector<char> retest(n, 0);
      net::mark_k_hop(*network_, seeds, 0, rebuild);
      net::mark_k_hop(*network_, seeds, 1, retest);
      esc_stats_.frames_rebuilt = count_marks(rebuild);
      esc_stats_.nodes_retested = count_marks(retest);

      // One effort vector serves both kernels: kFull on the whole retest
      // reach (superset of the rebuild set), so rebuilt frames run at full
      // budget and every retested node gets the doubled vote pool.
      std::vector<localization::EffortClass> effort(
          n, localization::EffortClass::kDefault);
      for (std::size_t i = 0; i < n; ++i) {
        if (retest[i] != 0) effort[i] = localization::EffortClass::kFull;
      }

      // The escalated frames are scratch: the cached Localize artifact must
      // keep matching (frames_key_, frames_version_), so save the base
      // frames and restore them after the re-test.
      std::vector<std::pair<net::NodeId, localization::LocalFrame>> saved;
      saved.reserve(esc_stats_.frames_rebuilt);
      for (std::size_t i = 0; i < n; ++i) {
        if (rebuild[i] != 0) {
          saved.emplace_back(static_cast<net::NodeId>(i), frames_[i]);
        }
      }

      const bool two_hop =
          ubf_config.scope == UbfConfig::EmptinessScope::kTwoHop;
      const localization::FrameScope scope =
          two_hop ? localization::FrameScope::kTwoHop
                  : localization::FrameScope::kOneHop;
      localization::FrameBuildStats esc_build;
      localization::build_all_frames(*localizer_, scope, frames_, threads,
                                     alive_mask, &rebuild, &esc_build,
                                     &effort);
      esc_stats_.escalation_sweeps = esc_build.sweeps_executed;
      // Savings estimate vs. a flat kFull build: every alive frame at the
      // full configured budget, minus what the first pass and the
      // escalation actually spent. An estimate (a flat run may restart),
      // floored at zero.
      const std::uint64_t per_frame_budget = static_cast<std::uint64_t>(
          two_hop ? config.localizer.mdsmap_sweeps
                  : config.localizer.smacof_sweeps);
      const std::uint64_t flat_full = num_alive_ * per_frame_budget;
      const std::uint64_t spent =
          loc_stats_.sweeps_executed + esc_build.sweeps_executed;
      esc_stats_.sweeps_saved_vs_full = flat_full > spent ? flat_full - spent
                                                          : 0;

      ubf.update_flags_on_frames(frames_, esc_flags_, alive_mask, &retest,
                                 threads, &esc_confidence_, &effort);

      // Fold back with the monotonicity rule: adopt the escalated verdict
      // only when it is at least as decisive as the first pass (distance
      // from the 0.5 threshold), except stress-gated nodes, which always
      // adopt. Reverted nodes keep their first-pass bits exactly.
      for (std::size_t i = 0; i < n; ++i) {
        if (retest[i] == 0 || alive_[i] == 0) continue;
        const double base_d =
            std::abs(static_cast<double>(ubf_confidence_[i]) - 0.5);
        const double esc_d =
            std::abs(static_cast<double>(esc_confidence_[i]) - 0.5);
        if (gated[i] != 0 || esc_d >= base_d) {
          ++esc_stats_.adopted;
          if (esc_flags_[i] != ubf_flags_[i]) ++esc_stats_.flags_changed;
          esc_stats_.confidence_delta_sum += std::abs(
              static_cast<double>(esc_confidence_[i]) - ubf_confidence_[i]);
          ++esc_stats_.confidence_delta_count;
        } else {
          esc_flags_[i] = ubf_flags_[i];
          esc_confidence_[i] = ubf_confidence_[i];
          ++esc_stats_.kept_first_pass;
        }
      }

      for (auto& [id, frame] : saved) frames_[id] = std::move(frame);

      if (obs::enabled()) {
        obs::Histogram& h = obs::Registry::global().histogram(
            "effort.confidence_delta",
            {0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5});
        for (std::size_t i = 0; i < n; ++i) {
          if (retest[i] != 0 && alive_[i] != 0) {
            h.observe(std::abs(static_cast<double>(esc_confidence_[i]) -
                               ubf_confidence_[i]));
          }
        }
      }
    }

    esc_candidates_.assign(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      esc_candidates_[i] = esc_flags_[i] != 0;
    }
    esc_fp_ = fp.value();
    esc_valid_ = true;
    ++stats_.escalate.full_runs;
    note_stage("escalate", "full_runs");
  }

  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("effort.planned_cheap").add(esc_stats_.planned_cheap);
    reg.counter("effort.planned_default").add(esc_stats_.planned_default);
    reg.counter("effort.planned_full").add(esc_stats_.planned_full);
    reg.counter("effort.escalated_nodes").add(esc_stats_.escalated_nodes);
    reg.counter("effort.frames_rebuilt").add(esc_stats_.frames_rebuilt);
    reg.counter("effort.nodes_retested").add(esc_stats_.nodes_retested);
    reg.counter("effort.escalation_sweeps").add(esc_stats_.escalation_sweeps);
    reg.counter("effort.sweeps_saved_vs_full")
        .add(esc_stats_.sweeps_saved_vs_full);
    reg.counter("effort.flags_changed").add(esc_stats_.flags_changed);
    reg.counter("effort.adopted").add(esc_stats_.adopted);
    reg.counter("effort.kept_first_pass").add(esc_stats_.kept_first_pass);
  }

  result.ubf_candidates = esc_candidates_;
  result.ubf_confidence = esc_confidence_;
  result.effort = esc_stats_;
  return true;
}

void DetectionSession::run_filter_stages(const PipelineConfig& config,
                                         bool faulted,
                                         const std::vector<bool>& candidates,
                                         const std::vector<float>& confidence,
                                         PipelineResult& result) {
  // --- IFF: whole-network flood over the candidate set (cheap relative
  // to localization; no partial variant). Keyed on the candidate flags,
  // the IFF knobs, the adjacency version (a move changes flood paths even
  // when the flags do not), and — under faults — the channel fingerprint
  // plus the retransmission count. A faulted execution runs under a fresh
  // stage-local fault model, so the artifact is a pure function of that
  // key regardless of what ran before it.
  {
    Fingerprint fp;
    fp.flags(candidates);
    fp.u64(config.iff.theta);
    fp.u64(config.iff.ttl);
    fp.boolean(config.iff.use_message_passing);
    fp.u64(topology_version_);
    fp.boolean(faulted);
    if (faulted) {
      fp.u64(fault_channel_fp_);
      fp.u64(config.flood_repeat);
    }
    if (iff_valid_ && iff_fp_ == fp.value()) {
      ++stats_.iff.cache_hits;
      note_stage("iff", "cache_hits");
    } else {
      BALLFIT_SPAN("iff");
      sim::ProtocolOptions proto{};
      std::optional<sim::FaultModel> stage_faults;
      if (faulted) {
        stage_faults.emplace(channel_config(*config.faults, kIffStreamTag),
                             network_->num_nodes());
        proto.faults = &*stage_faults;
        proto.repeat = config.flood_repeat;
      }
      iff_cost_ = {};
      std::vector<std::uint32_t>* counts_out =
          obs::enabled() ? &iff_counts_ : nullptr;
      if (counts_out == nullptr) iff_counts_.clear();
      boundary_ = iff_filter(*network_, candidates, config.iff,
                             &iff_cost_, proto, counts_out);
      iff_fault_stats_ = stage_faults ? stage_faults->stats()
                                      : sim::FaultStats{};
      iff_fp_ = fp.value();
      iff_valid_ = true;
      ++stats_.iff.full_runs;
      note_stage("iff", "full_runs");
    }
    result.boundary = boundary_;
    result.iff_cost = iff_cost_;
    if (faulted) {
      result.fault_stats.dropped += iff_fault_stats_.dropped;
      result.fault_stats.duplicated += iff_fault_stats_.duplicated;
    }
  }

  // --- Grouping (optional stage). Keyed like IFF: the boundary flags, the
  // message-passing switch, the adjacency version, and the fault channel.
  if (config.group) {
    Fingerprint fp;
    fp.flags(boundary_);
    fp.boolean(config.iff.use_message_passing);
    fp.u64(topology_version_);
    fp.boolean(faulted);
    if (faulted) {
      fp.u64(fault_channel_fp_);
      fp.u64(config.flood_repeat);
    }
    if (group_valid_ && group_fp_ == fp.value()) {
      ++stats_.group.cache_hits;
      note_stage("group", "cache_hits");
    } else {
      BALLFIT_SPAN("grouping");
      sim::ProtocolOptions proto{};
      std::optional<sim::FaultModel> stage_faults;
      if (faulted) {
        stage_faults.emplace(channel_config(*config.faults, kGroupStreamTag),
                             network_->num_nodes());
        proto.faults = &*stage_faults;
        proto.repeat = config.flood_repeat;
      }
      group_cost_ = {};
      groups_ = group_boundaries(*network_, boundary_,
                                 config.iff.use_message_passing,
                                 &group_cost_, proto);
      group_fault_stats_ = stage_faults ? stage_faults->stats()
                                        : sim::FaultStats{};
      group_fp_ = fp.value();
      group_valid_ = true;
      ++stats_.group.full_runs;
      note_stage("group", "full_runs");
    }
    result.groups = groups_;
    result.grouping_cost = group_cost_;
    if (faulted) {
      result.fault_stats.dropped += group_fault_stats_.dropped;
      result.fault_stats.duplicated += group_fault_stats_.duplicated;
    }

    // Per-boundary quality: cheap pure-function scoring over the cached
    // artifacts, recomputed whenever someone is observing. Components
    // whose inputs this run didn't produce (confidence/counts computed
    // under an earlier obs-off run and cached away) drop out gracefully.
    if (obs::enabled()) {
      result.group_quality = score_boundaries(
          groups_, config.iff.theta, confidence, iff_counts_);
      obs::Registry& reg = obs::Registry::global();
      obs::Histogram& h_quality = reg.histogram(
          "group.quality", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
      obs::Histogram& h_size = reg.histogram(
          "group.size", {10, 20, 50, 100, 200, 500, 1000, 2000});
      for (const BoundaryQuality& q : result.group_quality) {
        h_quality.observe(q.score);
        h_size.observe(static_cast<double>(q.size));
      }
    }
  }

  Fingerprint fp;
  fp.flags(result.boundary);
  fp.boolean(config.iff.use_message_passing);
  fp.boolean(config.group);
  // Downstream consumers (the surface stage) read node positions, so a
  // move must change the result identity even when the boundary set is
  // unchanged.
  fp.u64(topology_version_);
  result_fp_ = fp.value();
}

PipelineResult DetectionSession::run(const PipelineConfig& config) {
  BALLFIT_SPAN("pipeline");
  const std::size_t n = network_->num_nodes();
  const unsigned threads =
      config.threads == 0 ? default_threads() : config.threads;

  // Fold the fault model's crash state into the alive mask before any
  // stage runs: crashes act through the same masked kernels as user
  // deltas, so faults and `apply` history compose in one engine. An inert
  // (all-zero) config is the reliable path — the hook alone must not
  // change any output bit.
  const bool faulted = config.faults.has_value() && config.faults->any();
  if (faulted) {
    ensure_fault_model(*config.faults);
    sync_fault_state();
  } else {
    release_fault_model();
  }

  // Nodes know their ranging error specification; the UBF emptiness slack
  // scales with it unless the caller already set a hint explicitly.
  UbfConfig ubf_config = config.ubf;
  if (ubf_config.measurement_error_hint == 0.0 &&
      !config.use_true_coordinates) {
    ubf_config.measurement_error_hint = config.measurement_error;
  }
  // A crashed or fault-injected topology gets a conservative degenerate
  // vote: a crash-starved neighborhood must not promote itself to
  // "boundary" by starvation alone.
  if (masked_ || faulted) ubf_config.degenerate_is_boundary = false;

  PipelineResult result;
  run_ubf_stages(config, ubf_config, threads, result);
  const bool escalated =
      run_escalate_stage(config, ubf_config, threads, result);
  run_filter_stages(config, faulted,
                    escalated ? esc_candidates_ : ubf_candidates_,
                    escalated ? esc_confidence_ : ubf_confidence_, result);

  if (masked_) result.crashed_nodes = n - num_alive_;
  if (faulted) result.fault_stats.crashed = fault_model_->num_down();

  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("pipeline.runs").add(1);
    reg.counter("pipeline.nodes").add(n);
    reg.counter("pipeline.ubf_candidates").add(result.num_candidates());
    reg.counter("pipeline.boundary_nodes").add(result.num_boundary());
    reg.counter("pipeline.frame_fallbacks").add(result.frame_fallbacks);
    if (masked_) {
      reg.counter("pipeline.crashed_nodes").add(result.crashed_nodes);
    }
    if (faulted) {
      reg.counter("pipeline.dropped").add(result.fault_stats.dropped);
      reg.counter("pipeline.duplicated").add(result.fault_stats.duplicated);
    }
  }
  return result;
}

NetworkDelta delta_from_fault_state(const DetectionSession& session,
                                    const sim::FaultModel& faults) {
  const std::size_t n = session.network().num_nodes();
  BALLFIT_REQUIRE(faults.num_nodes() == n,
                  "fault model and session must cover the same network");
  NetworkDelta delta;
  for (net::NodeId v = 0; v < n; ++v) {
    const bool down = faults.is_down(v);
    if (down && session.is_alive(v)) {
      delta.crashed.push_back(v);
    } else if (!down && !session.is_alive(v)) {
      delta.revived.push_back(v);
    }
  }
  return delta;
}

}  // namespace ballfit::core
