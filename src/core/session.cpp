#include "core/session.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "net/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ballfit::core {

namespace {

/// FNV-1a accumulator for stage fingerprints. Doubles are mixed by bit
/// pattern, so a fingerprint match means the inputs were byte-identical —
/// exactly the contract the bit-identity guarantee needs.
class Fingerprint {
 public:
  void u64(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h_ ^= (v >> (8 * b)) & 0xffu;
      h_ *= 0x100000001b3ull;
    }
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void boolean(bool v) { u64(v ? 1u : 0u); }
  void flags(const std::vector<bool>& f) {
    u64(f.size());
    std::uint64_t acc = 0;
    int bits = 0;
    for (const bool x : f) {
      acc = (acc << 1) | (x ? 1u : 0u);
      if (++bits == 64) {
        u64(acc);
        acc = 0;
        bits = 0;
      }
    }
    if (bits > 0) u64(acc);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

/// Every UbfConfig field the per-node ball test reads, except the
/// degenerate vote — that one only reaches nodes without a usable frame,
/// which join every partial run, so it lives in the exact-hit key only.
void mix_ubf_core(Fingerprint& fp, const UbfConfig& c) {
  fp.f64(c.epsilon);
  fp.f64(c.radius_override);
  fp.f64(c.inside_tolerance);
  fp.f64(c.two_hop_inside_margin);
  fp.f64(c.measurement_error_hint);
  fp.f64(c.noise_margin_factor);
  fp.f64(c.noise_margin_cap);
  fp.u64(c.min_empty_balls);
  fp.f64(c.stress_gate_factor);
  fp.f64(c.stress_gate_floor);
  fp.boolean(c.cross_verify);
  fp.u64(c.verify_pool);
  fp.u64(c.scope == UbfConfig::EmptinessScope::kTwoHop ? 1u : 0u);
}

std::size_t count_marks(const std::vector<char>& mask) {
  return static_cast<std::size_t>(
      std::count(mask.begin(), mask.end(), static_cast<char>(1)));
}

void note_stage(const char* stage, const char* kind) {
  if (!obs::enabled()) return;
  obs::Registry::global()
      .counter(std::string("session.") + stage + "." + kind)
      .add(1);
}

/// Phase-1 detection on an arbitrary network (the full one, or the
/// surviving subnetwork under crashes). Returns the per-node flags and
/// counts frame fallbacks. Fault-path only — cached runs go through the
/// stage units below.
std::vector<bool> run_ubf(const net::Network& network,
                          const PipelineConfig& config,
                          const UbfConfig& ubf_config, unsigned threads,
                          std::size_t* frame_fallbacks) {
  const UnitBallFitting ubf(network, ubf_config);
  if (config.use_true_coordinates) {
    BALLFIT_SPAN("ubf");
    return ubf.detect_with_true_coordinates(frame_fallbacks);
  }
  std::optional<net::NoisyDistanceModel> model;
  std::optional<localization::Localizer> localizer;
  {
    BALLFIT_SPAN("measurement");
    model.emplace(network, config.measurement_error, config.noise_seed);
    localizer.emplace(network, *model);
  }
  BALLFIT_SPAN("ubf");
  return ubf.detect(*localizer, threads, frame_fallbacks);
}

/// The legacy fault-injected pipeline, preserved verbatim: one fault model
/// spans every communication stage, crashed nodes drop out via a survivor
/// subnetwork, and nothing is cached — the fault RNG streams are
/// call-order dependent, so these runs are not pure functions of the
/// config. Bit-identical to the pre-session `detect_boundaries`.
PipelineResult run_pipeline_with_faults(const net::Network& network,
                                        const PipelineConfig& config,
                                        unsigned threads) {
  PipelineResult result;
  const std::size_t n = network.num_nodes();

  // One fault model spans every communication stage of this run, so its
  // crash clock and loss streams are continuous across IFF and grouping.
  sim::FaultModel fault_model(*config.faults, n);
  sim::ProtocolOptions proto;
  proto.faults = &fault_model;
  proto.repeat = config.flood_repeat;

  // Nodes know their ranging error specification; the UBF emptiness slack
  // scales with it unless the caller already set a hint explicitly.
  UbfConfig ubf_config = config.ubf;
  if (ubf_config.measurement_error_hint == 0.0 &&
      !config.use_true_coordinates) {
    ubf_config.measurement_error_hint = config.measurement_error;
  }
  // Under faults a frame that cannot be built votes non-boundary: the
  // optimistic default would promote every crash-starved neighborhood to
  // "boundary" and flood the result with false positives. An inert fault
  // config keeps the reliable semantics — the hook alone must not change
  // any output bit.
  if (config.faults->any()) {
    ubf_config.degenerate_is_boundary = false;
  }

  // --- Phase 1: Unit Ball Fitting on per-node local frames.
  if (fault_model.num_down() > 0) {
    // Crashed nodes contribute no measurements and run no test: Phase 1
    // operates on the subnetwork induced by the survivors. Neighborhoods
    // shrink accordingly — nodes starved below the embeddable minimum are
    // the frame_fallbacks counted here.
    std::vector<net::NodeId> alive;
    alive.reserve(n);
    for (net::NodeId v = 0; v < n; ++v) {
      if (!fault_model.is_down(v)) alive.push_back(v);
    }
    result.ubf_candidates.assign(n, false);
    if (!alive.empty()) {
      std::vector<geom::Vec3> positions;
      std::vector<bool> truth;
      positions.reserve(alive.size());
      truth.reserve(alive.size());
      for (net::NodeId v : alive) {
        positions.push_back(network.position(v));
        truth.push_back(network.is_ground_truth_boundary(v));
      }
      net::Network survivors(std::move(positions), std::move(truth),
                             network.radio_range());
      const std::vector<bool> sub_flags =
          run_ubf(survivors, config, ubf_config, threads,
                  &result.frame_fallbacks);
      for (std::size_t i = 0; i < alive.size(); ++i) {
        result.ubf_candidates[alive[i]] = sub_flags[i];
      }
    }
  } else {
    result.ubf_candidates =
        run_ubf(network, config, ubf_config, threads,
                &result.frame_fallbacks);
  }

  // --- Phase 2: Isolated Fragment Filtering.
  {
    BALLFIT_SPAN("iff");
    result.boundary = iff_filter(network, result.ubf_candidates, config.iff,
                                 &result.iff_cost, proto);
  }

  // --- Grouping.
  if (config.group) {
    BALLFIT_SPAN("grouping");
    result.groups =
        group_boundaries(network, result.boundary,
                         config.iff.use_message_passing,
                         &result.grouping_cost, proto);
  }

  result.crashed_nodes = fault_model.num_down();
  result.fault_stats = fault_model.stats();

  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("pipeline.runs").add(1);
    reg.counter("pipeline.nodes").add(network.num_nodes());
    reg.counter("pipeline.ubf_candidates").add(result.num_candidates());
    reg.counter("pipeline.boundary_nodes").add(result.num_boundary());
    reg.counter("pipeline.frame_fallbacks").add(result.frame_fallbacks);
    reg.counter("pipeline.crashed_nodes").add(result.crashed_nodes);
    reg.counter("pipeline.dropped").add(result.fault_stats.dropped);
    reg.counter("pipeline.duplicated").add(result.fault_stats.duplicated);
  }
  return result;
}

}  // namespace

DetectionSession::DetectionSession(const net::Network& network)
    : network_(&network),
      alive_(network.num_nodes(), 1),
      num_alive_(network.num_nodes()),
      frames_dirty_(network.num_nodes(), 0),
      ubf_dirty_(network.num_nodes(), 0) {}

void DetectionSession::apply(const NetworkDelta& delta) {
  const std::size_t n = network_->num_nodes();
  std::vector<net::NodeId> changed;
  std::uint64_t crashed = 0;
  std::uint64_t revived = 0;
  for (const net::NodeId v : delta.crashed) {
    BALLFIT_REQUIRE(v < n, "crashed node id out of range");
    if (alive_[v] != 0) {
      alive_[v] = 0;
      --num_alive_;
      ++crashed;
      changed.push_back(v);
    }
  }
  for (const net::NodeId v : delta.revived) {
    BALLFIT_REQUIRE(v < n, "revived node id out of range");
    if (alive_[v] == 0) {
      alive_[v] = 1;
      ++num_alive_;
      ++revived;
      changed.push_back(v);
    }
  }
  if (changed.empty()) return;
  ++alive_epoch_;
  masked_ = num_alive_ < n;

  // A frame's membership is a subset of its owner's two-hop neighborhood,
  // so only frames within two hops of a changed node can change; a node's
  // UBF flag additionally reads its one-hop witnesses' frames, adding one
  // hop. The reach is computed on the full adjacency (conservative
  // superset of any masked reach).
  if (frames_valid_) net::mark_k_hop(*network_, changed, 2, frames_dirty_);
  if (ubf_valid_) net::mark_k_hop(*network_, changed, 3, ubf_dirty_);

  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("session.delta.crashed").add(crashed);
    reg.counter("session.delta.revived").add(revived);
  }
}

void DetectionSession::run_ubf_stages(const PipelineConfig& config,
                                      const UbfConfig& ubf_config,
                                      unsigned threads,
                                      PipelineResult& result) {
  const std::size_t n = network_->num_nodes();
  const std::vector<char>* alive_mask = masked_ ? &alive_ : nullptr;

  if (config.use_true_coordinates) {
    // No Measure/Localize artifacts: the oracle reads true positions. The
    // artifact is keyed on the full config + the alive epoch; any topology
    // change recomputes it outright (the oracle sweep is cheap).
    Fingerprint core;
    core.u64(2);  // true-coordinates artifact tag
    mix_ubf_core(core, ubf_config);
    Fingerprint full;
    full.u64(core.value());
    full.boolean(ubf_config.degenerate_is_boundary);
    full.u64(alive_epoch_);
    if (ubf_valid_ && ubf_full_fp_ == full.value()) {
      ++stats_.ubf.cache_hits;
      note_stage("ubf", "cache_hits");
    } else {
      BALLFIT_SPAN("ubf");
      const UnitBallFitting ubf(*network_, ubf_config);
      // Confidence rides along only when someone is observing; it never
      // feeds back into the flags, so the artifact key ignores it.
      std::vector<float>* conf_out =
          obs::enabled() ? &ubf_confidence_ : nullptr;
      if (conf_out == nullptr) ubf_confidence_.clear();
      ubf_candidates_ = ubf.detect_with_true_coordinates(
          &frame_fallbacks_, alive_mask, conf_out);
      ubf_flags_.assign(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        ubf_flags_[i] = ubf_candidates_[i] ? 1 : 0;
      }
      ubf_full_fp_ = full.value();
      ubf_core_fp_ = 0;
      ubf_valid_ = true;
      ubf_partial_ok_ = false;  // partial updates are a frame-path feature
      std::fill(ubf_dirty_.begin(), ubf_dirty_.end(), 0);
      ++stats_.ubf.full_runs;
      note_stage("ubf", "full_runs");
    }
    result.ubf_candidates = ubf_candidates_;
    result.ubf_confidence = ubf_confidence_;
    result.frame_fallbacks = frame_fallbacks_;
    return;
  }

  // --- Measure: noise model + localizer (includes the per-edge
  // measurement cache). Keyed on exactly (measurement_error, noise_seed).
  {
    Fingerprint fp;
    fp.f64(config.measurement_error);
    fp.u64(config.noise_seed);
    if (measure_valid_ && measure_fp_ == fp.value()) {
      ++stats_.measure.cache_hits;
      note_stage("measure", "cache_hits");
    } else {
      BALLFIT_SPAN("measurement");
      model_.emplace(*network_, config.measurement_error, config.noise_seed);
      localizer_.emplace(*network_, *model_);
      measure_fp_ = fp.value();
      measure_valid_ = true;
      ++measure_version_;  // downstream keys reference the new artifact
      ++stats_.measure.full_runs;
      note_stage("measure", "full_runs");
    }
  }

  BALLFIT_SPAN("ubf");

  // --- Localize: one frame per node. Keyed on (measure artifact, scope)
  // plus the alive epoch; an epoch mismatch with a matching key re-embeds
  // the dirty neighborhoods only.
  const bool two_hop = ubf_config.scope == UbfConfig::EmptinessScope::kTwoHop;
  std::uint64_t frames_key = 0;
  {
    Fingerprint fp;
    fp.u64(measure_version_);
    fp.boolean(two_hop);
    frames_key = fp.value();
  }
  if (frames_valid_ && frames_key_ == frames_key &&
      frames_epoch_ == alive_epoch_) {
    ++stats_.localize.cache_hits;
    note_stage("localize", "cache_hits");
  } else {
    BALLFIT_SPAN("mds_frames");
    const localization::FrameScope scope = two_hop
                                               ? localization::FrameScope::kTwoHop
                                               : localization::FrameScope::kOneHop;
    // Same key + older epoch: the frames differ only inside the dirty
    // neighborhoods accumulated by apply(). Each frame is a pure function
    // of (network, model, scope, alive), so the partial rebuild is
    // bit-identical to a full one.
    if (frames_valid_ && frames_key_ == frames_key) {
      stats_.last_frames_rebuilt = count_marks(frames_dirty_);
      localization::build_all_frames(*localizer_, scope, frames_, threads,
                                     alive_mask, &frames_dirty_);
      ++stats_.localize.partial_runs;
      note_stage("localize", "partial_runs");
      if (obs::enabled()) {
        obs::Registry::global()
            .gauge("session.frames_rebuilt")
            .set(static_cast<double>(stats_.last_frames_rebuilt));
      }
    } else {
      frames_.clear();
      localization::build_all_frames(*localizer_, scope, frames_, threads,
                                     alive_mask, nullptr);
      ++stats_.localize.full_runs;
      note_stage("localize", "full_runs");
    }
    frames_key_ = frames_key;
    frames_epoch_ = alive_epoch_;
    frames_valid_ = true;
    ++frames_version_;
    std::fill(frames_dirty_.begin(), frames_dirty_.end(), 0);
  }

  // Fallback count is a pure function of (frames, alive): the nodes that
  // would vote the degenerate default. Recounted here so cache hits report
  // the same value a fresh run would.
  frame_fallbacks_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (alive_[i] != 0 && !frames_[i].ok) ++frame_fallbacks_;
  }

  // --- UBF ball test + witness cross-verification.
  Fingerprint core;
  core.u64(1);  // frame-path artifact tag
  core.u64(frames_key_);
  mix_ubf_core(core, ubf_config);
  Fingerprint full;
  full.u64(core.value());
  full.boolean(ubf_config.degenerate_is_boundary);
  full.u64(frames_version_);
  if (ubf_valid_ && ubf_full_fp_ == full.value()) {
    ++stats_.ubf.cache_hits;
    note_stage("ubf", "cache_hits");
  } else {
    const UnitBallFitting ubf(*network_, ubf_config);
    const bool partial = ubf_valid_ && ubf_partial_ok_ &&
                         ubf_core_fp_ == core.value() &&
                         ubf_flags_.size() == n;
    // Obs-gated confidence companion. A partial run can only update the
    // entries it re-tests, so it needs a full-sized carry-over; when the
    // previous artifact had no confidence (obs was off), start from zeros
    // — the untested remainder reads 0 ("not scored"), never garbage.
    std::vector<float>* conf_out = nullptr;
    if (obs::enabled()) {
      if (ubf_confidence_.size() != n) ubf_confidence_.assign(n, 0.0f);
      conf_out = &ubf_confidence_;
    } else {
      ubf_confidence_.clear();
    }
    if (partial) {
      // Re-test the dirty neighborhoods plus every alive node without a
      // usable frame — the only readers of the degenerate vote, which the
      // core key deliberately omits.
      for (std::size_t i = 0; i < n; ++i) {
        if (alive_[i] != 0 && !frames_[i].ok) ubf_dirty_[i] = 1;
      }
      stats_.last_nodes_retested = count_marks(ubf_dirty_);
      ubf.update_flags_on_frames(frames_, ubf_flags_, alive_mask,
                                 &ubf_dirty_, threads, conf_out);
      ++stats_.ubf.partial_runs;
      note_stage("ubf", "partial_runs");
      if (obs::enabled()) {
        obs::Registry::global()
            .gauge("session.nodes_retested")
            .set(static_cast<double>(stats_.last_nodes_retested));
      }
    } else {
      ubf_flags_.assign(n, 0);
      ubf.update_flags_on_frames(frames_, ubf_flags_, alive_mask,
                                 /*run_mask=*/nullptr, threads, conf_out);
      ++stats_.ubf.full_runs;
      note_stage("ubf", "full_runs");
    }
    ubf_candidates_.assign(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      ubf_candidates_[i] = ubf_flags_[i] != 0;
    }
    ubf_full_fp_ = full.value();
    ubf_core_fp_ = core.value();
    ubf_valid_ = true;
    ubf_partial_ok_ = true;
    std::fill(ubf_dirty_.begin(), ubf_dirty_.end(), 0);
  }
  result.ubf_candidates = ubf_candidates_;
  result.ubf_confidence = ubf_confidence_;
  result.frame_fallbacks = frame_fallbacks_;
}

void DetectionSession::run_filter_stages(const PipelineConfig& config,
                                         PipelineResult& result) {
  const sim::ProtocolOptions proto{};  // reliable network on cached paths

  // --- IFF: whole-network flood over the candidate set (cheap relative
  // to localization; no partial variant). Keyed on the candidate flags +
  // the IFF knobs.
  {
    Fingerprint fp;
    fp.flags(ubf_candidates_);
    fp.u64(config.iff.theta);
    fp.u64(config.iff.ttl);
    fp.boolean(config.iff.use_message_passing);
    if (iff_valid_ && iff_fp_ == fp.value()) {
      ++stats_.iff.cache_hits;
      note_stage("iff", "cache_hits");
    } else {
      BALLFIT_SPAN("iff");
      iff_cost_ = {};
      std::vector<std::uint32_t>* counts_out =
          obs::enabled() ? &iff_counts_ : nullptr;
      if (counts_out == nullptr) iff_counts_.clear();
      boundary_ = iff_filter(*network_, ubf_candidates_, config.iff,
                             &iff_cost_, proto, counts_out);
      iff_fp_ = fp.value();
      iff_valid_ = true;
      ++stats_.iff.full_runs;
      note_stage("iff", "full_runs");
    }
    result.boundary = boundary_;
    result.iff_cost = iff_cost_;
  }

  // --- Grouping (optional stage). Keyed on the boundary flags + the
  // message-passing switch it shares with IFF.
  if (config.group) {
    Fingerprint fp;
    fp.flags(boundary_);
    fp.boolean(config.iff.use_message_passing);
    if (group_valid_ && group_fp_ == fp.value()) {
      ++stats_.group.cache_hits;
      note_stage("group", "cache_hits");
    } else {
      BALLFIT_SPAN("grouping");
      group_cost_ = {};
      groups_ = group_boundaries(*network_, boundary_,
                                 config.iff.use_message_passing,
                                 &group_cost_, proto);
      group_fp_ = fp.value();
      group_valid_ = true;
      ++stats_.group.full_runs;
      note_stage("group", "full_runs");
    }
    result.groups = groups_;
    result.grouping_cost = group_cost_;

    // Per-boundary quality: cheap pure-function scoring over the cached
    // artifacts, recomputed whenever someone is observing. Components
    // whose inputs this run didn't produce (confidence/counts computed
    // under an earlier obs-off run and cached away) drop out gracefully.
    if (obs::enabled()) {
      result.group_quality = score_boundaries(
          groups_, config.iff.theta, ubf_confidence_, iff_counts_);
      obs::Registry& reg = obs::Registry::global();
      obs::Histogram& h_quality = reg.histogram(
          "group.quality", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
      obs::Histogram& h_size = reg.histogram(
          "group.size", {10, 20, 50, 100, 200, 500, 1000, 2000});
      for (const BoundaryQuality& q : result.group_quality) {
        h_quality.observe(q.score);
        h_size.observe(static_cast<double>(q.size));
      }
    }
  }

  Fingerprint fp;
  fp.flags(result.boundary);
  fp.boolean(config.iff.use_message_passing);
  fp.boolean(config.group);
  result_fp_ = fp.value();
}

PipelineResult DetectionSession::run(const PipelineConfig& config) {
  BALLFIT_SPAN("pipeline");
  const std::size_t n = network_->num_nodes();
  const unsigned threads =
      config.threads == 0 ? default_threads() : config.threads;

  if (config.faults) {
    BALLFIT_REQUIRE(!masked_,
                    "fault injection cannot be combined with an applied "
                    "NetworkDelta — use one crash mechanism per session");
    ++stats_.fault_runs;
    obs::count("session.fault_runs");
    return run_pipeline_with_faults(*network_, config, threads);
  }

  // Nodes know their ranging error specification; the UBF emptiness slack
  // scales with it unless the caller already set a hint explicitly.
  UbfConfig ubf_config = config.ubf;
  if (ubf_config.measurement_error_hint == 0.0 &&
      !config.use_true_coordinates) {
    ubf_config.measurement_error_hint = config.measurement_error;
  }
  // A crashed topology gets the same conservative degenerate vote as the
  // fault path: a crash-starved neighborhood must not promote itself to
  // "boundary" by starvation alone.
  if (masked_) ubf_config.degenerate_is_boundary = false;

  PipelineResult result;
  run_ubf_stages(config, ubf_config, threads, result);
  run_filter_stages(config, result);

  if (masked_) result.crashed_nodes = n - num_alive_;

  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("pipeline.runs").add(1);
    reg.counter("pipeline.nodes").add(n);
    reg.counter("pipeline.ubf_candidates").add(result.num_candidates());
    reg.counter("pipeline.boundary_nodes").add(result.num_boundary());
    reg.counter("pipeline.frame_fallbacks").add(result.frame_fallbacks);
    if (masked_) {
      reg.counter("pipeline.crashed_nodes").add(result.crashed_nodes);
    }
  }
  return result;
}

NetworkDelta delta_from_fault_state(const DetectionSession& session,
                                    const sim::FaultModel& faults) {
  const std::size_t n = session.network().num_nodes();
  BALLFIT_REQUIRE(faults.num_nodes() == n,
                  "fault model and session must cover the same network");
  NetworkDelta delta;
  for (net::NodeId v = 0; v < n; ++v) {
    const bool down = faults.is_down(v);
    if (down && session.is_alive(v)) {
      delta.crashed.push_back(v);
    } else if (!down && !session.is_alive(v)) {
      delta.revived.push_back(v);
    }
  }
  return delta;
}

}  // namespace ballfit::core
