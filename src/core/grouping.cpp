#include "core/grouping.hpp"

#include <algorithm>
#include <map>

#include "common/assert.hpp"
#include "sim/protocols.hpp"

namespace ballfit::core {

BoundaryGroups group_boundaries(const net::Network& network,
                                const std::vector<bool>& boundary,
                                bool use_message_passing,
                                sim::RunStats* stats,
                                const sim::ProtocolOptions& proto) {
  BALLFIT_REQUIRE(boundary.size() == network.num_nodes(),
                  "boundary mask size mismatch");

  BoundaryGroups out;
  out.leader = use_message_passing
                   ? sim::leader_flood(network, boundary, stats, proto)
                   : sim::leader_flood_oracle(network, boundary);

  std::map<net::NodeId, std::vector<net::NodeId>> by_leader;
  for (net::NodeId v = 0; v < network.num_nodes(); ++v) {
    if (out.leader[v] != net::kInvalidNode) by_leader[out.leader[v]].push_back(v);
  }
  out.groups.reserve(by_leader.size());
  for (auto& [leader, members] : by_leader) {
    std::sort(members.begin(), members.end());
    out.groups.push_back(std::move(members));
  }
  return out;
}

}  // namespace ballfit::core
