#include "core/grouping.hpp"

#include <algorithm>
#include <map>

#include "common/assert.hpp"
#include "sim/protocols.hpp"

namespace ballfit::core {

BoundaryGroups group_boundaries(const net::Network& network,
                                const std::vector<bool>& boundary,
                                bool use_message_passing,
                                sim::RunStats* stats,
                                const sim::ProtocolOptions& proto) {
  BALLFIT_REQUIRE(boundary.size() == network.num_nodes(),
                  "boundary mask size mismatch");

  BoundaryGroups out;
  out.leader = use_message_passing
                   ? sim::leader_flood(network, boundary, stats, proto)
                   : sim::leader_flood_oracle(network, boundary);

  std::map<net::NodeId, std::vector<net::NodeId>> by_leader;
  for (net::NodeId v = 0; v < network.num_nodes(); ++v) {
    if (out.leader[v] != net::kInvalidNode) by_leader[out.leader[v]].push_back(v);
  }
  out.groups.reserve(by_leader.size());
  for (auto& [leader, members] : by_leader) {
    std::sort(members.begin(), members.end());
    out.groups.push_back(std::move(members));
  }
  return out;
}

std::vector<BoundaryQuality> score_boundaries(
    const BoundaryGroups& groups, std::uint32_t theta,
    const std::vector<float>& confidence,
    const std::vector<std::uint32_t>& flood_counts) {
  const double th = theta == 0 ? 1.0 : static_cast<double>(theta);
  std::vector<BoundaryQuality> out;
  out.reserve(groups.groups.size());
  for (const std::vector<net::NodeId>& members : groups.groups) {
    BoundaryQuality q;
    q.size = members.size();
    q.leader = members.empty() ? net::kInvalidNode : members.front();
    q.size_score = static_cast<double>(q.size) /
                   (static_cast<double>(q.size) + th);

    double conf_sum = 0.0;
    double flood_sum = 0.0;
    std::size_t conf_n = 0;
    std::size_t flood_n = 0;
    for (const net::NodeId v : members) {
      if (v < confidence.size()) {
        conf_sum += confidence[v];
        ++conf_n;
      }
      if (v < flood_counts.size()) {
        const double c = flood_counts[v];
        flood_sum += c / (c + th);
        ++flood_n;
      }
    }
    double total = q.size_score;
    int parts = 1;
    if (conf_n > 0) {
      q.mean_confidence = conf_sum / static_cast<double>(conf_n);
      total += q.mean_confidence;
      ++parts;
    }
    if (flood_n > 0) {
      q.flood_margin = flood_sum / static_cast<double>(flood_n);
      total += q.flood_margin;
      ++parts;
    }
    q.score = total / parts;
    out.push_back(q);
  }
  return out;
}

}  // namespace ballfit::core
