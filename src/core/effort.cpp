/// \file effort.cpp
/// The effort control plane's planner: turns first-pass UBF confidence and
/// frame stress signals into a per-node EffortClass vector (see
/// pipeline.hpp for the class semantics and session.hpp for the Escalate
/// stage that consumes the plan).

#include <cmath>

#include "common/assert.hpp"
#include "core/pipeline.hpp"

namespace ballfit::core {

EffortPlan build_effort_plan(const std::vector<float>& confidence,
                             const std::vector<localization::LocalFrame>& frames,
                             const std::vector<char>* alive,
                             const UnitBallFitting& ubf,
                             const EscalationConfig& esc) {
  const std::size_t n = frames.size();
  BALLFIT_REQUIRE(confidence.size() == n,
                  "effort planning needs a full confidence vector");
  BALLFIT_REQUIRE(alive == nullptr || alive->size() == n,
                  "alive mask must be sized num_nodes");
  BALLFIT_REQUIRE(esc.margin > 0.0 && esc.margin < 0.5,
                  "escalation margin must lie in (0, 0.5)");
  BALLFIT_REQUIRE(esc.relax >= 1.0, "escalation relax factor must be >= 1");

  EffortPlan plan;
  plan.classes.assign(n, EffortClass::kDefault);
  for (std::size_t i = 0; i < n; ++i) {
    if (alive != nullptr && (*alive)[i] == 0) {
      plan.classes[i] = EffortClass::kCheap;  // dead: nothing to refine
      continue;
    }
    if (!frames[i].ok) {
      // Degenerate neighborhood — no embedding exists at any effort level,
      // so extra sweeps cannot buy information.
      plan.classes[i] = EffortClass::kCheap;
      continue;
    }
    if (!ubf.frame_reliable(frames[i].stress_rms)) {
      // Stress-gated: the first pass abstained because the frame looked
      // folded. A kFull re-embed is exactly the effort that can rescue it.
      plan.classes[i] = EffortClass::kFull;
      continue;
    }
    const double dist = std::abs(static_cast<double>(confidence[i]) - 0.5);
    if (dist < esc.margin) {
      plan.classes[i] = EffortClass::kFull;  // marginal verdict
    } else if (dist >= esc.relax * esc.margin) {
      plan.classes[i] = EffortClass::kCheap;  // confidently classified
    }
  }
  return plan;
}

}  // namespace ballfit::core
