#include "core/stats.hpp"

#include "common/assert.hpp"
#include "net/graph.hpp"

namespace ballfit::core {

namespace {

double rate(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

HopDistribution to_distribution(const std::array<std::size_t, 4>& counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  HopDistribution d{};
  for (std::size_t i = 0; i < 4; ++i) d[i] = rate(counts[i], total);
  return d;
}

void bucket_hops(std::uint32_t hops, std::array<std::size_t, 4>& counts) {
  if (hops >= 1 && hops <= 3) {
    ++counts[hops - 1];
  } else {
    ++counts[3];  // >3 hops or unreachable
  }
}

}  // namespace

double DetectionStats::found_rate() const { return rate(found, true_boundary); }
double DetectionStats::correct_rate() const {
  return rate(correct, true_boundary);
}
double DetectionStats::mistaken_rate() const {
  return rate(mistaken, true_boundary);
}
double DetectionStats::missing_rate() const {
  return rate(missing, true_boundary);
}

HopDistribution DetectionStats::mistaken_hops() const {
  return to_distribution(mistaken_hop_counts);
}
HopDistribution DetectionStats::missing_hops() const {
  return to_distribution(missing_hop_counts);
}

DetectionStats evaluate_detection(const net::Network& network,
                                  const std::vector<bool>& detected) {
  BALLFIT_REQUIRE(detected.size() == network.num_nodes(),
                  "detection mask size mismatch");
  DetectionStats s;
  s.total_nodes = network.num_nodes();

  std::vector<net::NodeId> correct_nodes;
  std::vector<net::NodeId> mistaken_nodes;
  std::vector<net::NodeId> missing_nodes;
  for (net::NodeId v = 0; v < network.num_nodes(); ++v) {
    const bool truth = network.is_ground_truth_boundary(v);
    if (truth) ++s.true_boundary;
    if (detected[v]) {
      ++s.found;
      if (truth) {
        ++s.correct;
        correct_nodes.push_back(v);
      } else {
        ++s.mistaken;
        mistaken_nodes.push_back(v);
      }
    } else if (truth) {
      ++s.missing;
      missing_nodes.push_back(v);
    }
  }

  // Hop distance from every node to the nearest correctly identified
  // boundary node (over the full graph — packets are not restricted here,
  // the metric is purely geometric closeness in hops).
  if (!correct_nodes.empty()) {
    const net::MultiSourceBfs bfs =
        net::multi_source_bfs(network, correct_nodes);
    for (net::NodeId v : mistaken_nodes)
      bucket_hops(bfs.distance[v], s.mistaken_hop_counts);
    for (net::NodeId v : missing_nodes)
      bucket_hops(bfs.distance[v], s.missing_hop_counts);
  } else {
    for (std::size_t i = 0; i < mistaken_nodes.size(); ++i)
      ++s.mistaken_hop_counts[3];
    for (std::size_t i = 0; i < missing_nodes.size(); ++i)
      ++s.missing_hop_counts[3];
  }
  return s;
}

DetectionStats merge_stats(const std::vector<DetectionStats>& parts) {
  DetectionStats out;
  for (const DetectionStats& p : parts) {
    out.total_nodes += p.total_nodes;
    out.true_boundary += p.true_boundary;
    out.found += p.found;
    out.correct += p.correct;
    out.mistaken += p.mistaken;
    out.missing += p.missing;
    for (std::size_t i = 0; i < 4; ++i) {
      out.mistaken_hop_counts[i] += p.mistaken_hop_counts[i];
      out.missing_hop_counts[i] += p.missing_hop_counts[i];
    }
  }
  return out;
}

}  // namespace ballfit::core
