#include "core/sharded.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "common/stopwatch.hpp"
#include "geom/aabb.hpp"
#include "obs/metrics.hpp"

namespace ballfit::core {

using net::NodeId;
using net::kInvalidNode;

namespace {

/// The cell lattice: AABB split into kx × ky × kz boxes. Cells are
/// addressed per axis; a point's owning cell clamps into range so boundary
/// nodes (and nodes that moved outside the original AABB) stay owned.
struct CellLattice {
  geom::Vec3 origin{};
  double step[3] = {0.0, 0.0, 0.0};
  std::size_t k[3] = {1, 1, 1};

  std::size_t axis_cell(double coord, int d) const {
    if (step[d] <= 0.0 || k[d] <= 1) return 0;
    const double t = (coord - (d == 0 ? origin.x : d == 1 ? origin.y
                                                          : origin.z)) /
                     step[d];
    auto c = static_cast<std::ptrdiff_t>(std::floor(t));
    if (c < 0) c = 0;
    if (static_cast<std::size_t>(c) >= k[d]) {
      c = static_cast<std::ptrdiff_t>(k[d]) - 1;
    }
    return static_cast<std::size_t>(c);
  }

  std::size_t cell_of(const geom::Vec3& p) const {
    return (axis_cell(p.z, 2) * k[1] + axis_cell(p.y, 1)) * k[0] +
           axis_cell(p.x, 0);
  }

  std::size_t num_cells() const { return k[0] * k[1] * k[2]; }
};

CellLattice make_lattice(const net::Network& network,
                         const ShardedConfig& config) {
  geom::Aabb box;
  for (const geom::Vec3& p : network.positions()) box.expand(p);
  const geom::Vec3 ext = box.extent();
  const double r = network.radio_range();

  CellLattice lat;
  lat.origin = box.min;
  const double e[3] = {ext.x, ext.y, ext.z};

  std::size_t k[3] = {config.cells_x, config.cells_y, config.cells_z};
  if (k[0] == 0 && k[1] == 0 && k[2] == 0) {
    const double per_shard = static_cast<double>(
        std::max<std::size_t>(1, config.target_nodes_per_shard));
    const double want =
        std::max(1.0, std::round(static_cast<double>(network.num_nodes()) /
                                 per_shard));
    // Distribute cells over the axes that have room, proportional to
    // extent; near-flat axes (extent below one radio range) stay uncut.
    double active_prod = 1.0;
    int active = 0;
    for (int d = 0; d < 3; ++d) {
      k[d] = 1;
      if (e[d] > r) {
        active_prod *= e[d];
        ++active;
      }
    }
    if (active > 0) {
      const double s = std::pow(want / active_prod, 1.0 / active);
      for (int d = 0; d < 3; ++d) {
        if (e[d] > r) {
          k[d] = static_cast<std::size_t>(
              std::max<long long>(1, std::llround(e[d] * s)));
        }
      }
    }
  } else {
    for (auto& kd : k) kd = std::max<std::size_t>(1, kd);
  }
  for (int d = 0; d < 3; ++d) {
    lat.k[d] = k[d];
    lat.step[d] = k[d] > 0 && e[d] > 0.0
                      ? e[d] / static_cast<double>(k[d])
                      : 0.0;
  }
  return lat;
}

}  // namespace

struct ShardedDetector::Shard {
  explicit Shard(net::Network::Subnetwork sub)
      : to_global(std::move(sub.to_global)), net(std::move(sub.net)) {}

  std::vector<NodeId> to_global;    ///< sorted members (owned + halo)
  net::Network net;                 ///< induced subnetwork
  std::vector<char> owned;          ///< local id -> owns flag
  std::vector<NodeId> owned_local;  ///< local ids of owned nodes, ascending
  std::optional<DetectionSession> session;
  ShardInfo info;

  NodeId local_of(NodeId g) const {
    const auto it =
        std::lower_bound(to_global.begin(), to_global.end(), g);
    BALLFIT_ASSERT(it != to_global.end() && *it == g);
    return static_cast<NodeId>(it - to_global.begin());
  }
};

ShardedDetector::ShardedDetector(const net::Network& network,
                                 ShardedConfig config)
    : network_(&network), config_(config) {
  const std::size_t n = network.num_nodes();
  BALLFIT_REQUIRE(n > 0, "cannot shard an empty network");
  BALLFIT_REQUIRE(config_.halo_hops >= 3,
                  "halo_hops must be >= 3 (2-hop frames + 1 witness hop)");

  const CellLattice lat = make_lattice(network, config_);
  const std::size_t num_cells = lat.num_cells();
  const double halo =
      static_cast<double>(config_.halo_hops) * network.radio_range();

  // Pass 1 over nodes: owning cell + the Chebyshev-inflated cell range the
  // node is halo of (a superset of the Euclidean rim — conservative, and
  // cheap to compute without per-cell distance tests).
  std::vector<std::uint32_t> own_cell(n);
  std::vector<std::size_t> cell_members(num_cells, 0);
  const auto halo_range = [&](const geom::Vec3& p, std::size_t lo[3],
                              std::size_t hi[3]) {
    const double c[3] = {p.x, p.y, p.z};
    for (int d = 0; d < 3; ++d) {
      lo[d] = lat.axis_cell(c[d] - halo, d);
      hi[d] = lat.axis_cell(c[d] + halo, d);
    }
  };
  for (NodeId i = 0; i < n; ++i) {
    const geom::Vec3& p = network.position(i);
    own_cell[i] = static_cast<std::uint32_t>(lat.cell_of(p));
    std::size_t lo[3], hi[3];
    halo_range(p, lo, hi);
    for (std::size_t z = lo[2]; z <= hi[2]; ++z)
      for (std::size_t y = lo[1]; y <= hi[1]; ++y)
        for (std::size_t x = lo[0]; x <= hi[0]; ++x) {
          ++cell_members[(z * lat.k[1] + y) * lat.k[0] + x];
        }
  }

  // Cells with no owned node never report anything — skip them entirely.
  std::vector<std::size_t> owned_per_cell(num_cells, 0);
  for (NodeId i = 0; i < n; ++i) ++owned_per_cell[own_cell[i]];
  std::vector<std::uint32_t> shard_of_cell(num_cells,
                                           static_cast<std::uint32_t>(-1));
  std::uint32_t num_shards = 0;
  for (std::size_t c = 0; c < num_cells; ++c) {
    if (owned_per_cell[c] > 0) shard_of_cell[c] = num_shards++;
  }

  std::vector<std::vector<NodeId>> members(num_shards);
  for (std::size_t c = 0; c < num_cells; ++c) {
    if (shard_of_cell[c] != static_cast<std::uint32_t>(-1)) {
      members[shard_of_cell[c]].reserve(cell_members[c]);
    }
  }
  // Ascending node loop keeps every member list sorted.
  for (NodeId i = 0; i < n; ++i) {
    const geom::Vec3& p = network.position(i);
    std::size_t lo[3], hi[3];
    halo_range(p, lo, hi);
    for (std::size_t z = lo[2]; z <= hi[2]; ++z)
      for (std::size_t y = lo[1]; y <= hi[1]; ++y)
        for (std::size_t x = lo[0]; x <= hi[0]; ++x) {
          const std::uint32_t s =
              shard_of_cell[(z * lat.k[1] + y) * lat.k[0] + x];
          if (s != static_cast<std::uint32_t>(-1)) members[s].push_back(i);
        }
  }

  shards_.reserve(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    auto shard =
        std::make_unique<Shard>(network.induced_subnetwork(members[s]));
    const std::size_t m = shard->to_global.size();
    shard->owned.assign(m, 0);
    for (std::size_t l = 0; l < m; ++l) {
      const NodeId g = shard->to_global[l];
      if (shard_of_cell[own_cell[g]] == s) {
        shard->owned[l] = 1;
        shard->owned_local.push_back(static_cast<NodeId>(l));
      }
    }
    shard->info.owned_nodes = shard->owned_local.size();
    shard->info.halo_nodes = m - shard->owned_local.size();
    // Mutable binding: the shard owns its subnetwork by value, and only
    // the session mutates it (move deltas routed through apply()).
    shard->session.emplace(shard->net);
    shards_.push_back(std::move(shard));
  }

  // Persist the lattice geometry: apply() validates and routes move
  // deltas against the construction-time grid (membership is positional
  // and never changes after construction).
  lattice_origin_ = lat.origin;
  for (int d = 0; d < 3; ++d) {
    lattice_step_[d] = lat.step[d];
    lattice_k_[d] = lat.k[d];
  }
  halo_dist_ = halo;
  own_cell_ = std::move(own_cell);
  shard_of_cell_ = std::move(shard_of_cell);

  // Node -> shards routing CSR (ascending shard ids per node, because the
  // shard loop below visits shards in order).
  route_offsets_.assign(n + 1, 0);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    for (NodeId g : shards_[s]->to_global) ++route_offsets_[g + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    route_offsets_[i + 1] += route_offsets_[i];
  }
  route_shards_.resize(route_offsets_[n]);
  {
    std::vector<std::size_t> cursor(route_offsets_.begin(),
                                    route_offsets_.end() - 1);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      for (NodeId g : shards_[s]->to_global) {
        route_shards_[cursor[g]++] = s;
      }
    }
  }

  alive_.assign(n, 1);
  num_alive_ = n;
}

ShardedDetector::ShardedDetector(net::Network& network, ShardedConfig config)
    : ShardedDetector(static_cast<const net::Network&>(network),
                      std::move(config)) {
  mutable_network_ = &network;
}

ShardedDetector::~ShardedDetector() = default;
ShardedDetector::ShardedDetector(ShardedDetector&&) noexcept = default;
ShardedDetector& ShardedDetector::operator=(ShardedDetector&&) noexcept =
    default;

const ShardInfo& ShardedDetector::shard_info(std::size_t s) const {
  BALLFIT_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s]->info;
}

const DetectionSession& ShardedDetector::shard_session(std::size_t s) const {
  BALLFIT_REQUIRE(s < shards_.size(), "shard index out of range");
  return *shards_[s]->session;
}

std::span<const std::uint32_t> ShardedDetector::shards_of(NodeId g) const {
  BALLFIT_REQUIRE(g < network_->num_nodes(), "node id out of range");
  return {route_shards_.data() + route_offsets_[g],
          route_offsets_[g + 1] - route_offsets_[g]};
}

PipelineResult ShardedDetector::run(const PipelineConfig& config) {
  BALLFIT_REQUIRE(!config.faults.has_value(),
                  "ShardedDetector does not support fault injection: the "
                  "loss/duplication channel RNG is call-order dependent, so "
                  "per-shard replay diverges from the unsharded stream. "
                  "ROADMAP caveat: re-keying the channel draw per (stage, "
                  "node) would make sharded faults reproducible; until then "
                  "run faulted configs through an unsharded "
                  "DetectionSession");
  BALLFIT_REQUIRE(config.iff.ttl <= config_.halo_hops,
                  "IFF ttl exceeds the halo width; widen "
                  "ShardedConfig::halo_hops to at least the ttl");
  BALLFIT_REQUIRE(!config.escalate.enabled || config_.halo_hops >= 6,
                  "escalation needs ShardedConfig::halo_hops >= 6: an owned "
                  "node's escalated flag reads the plan of seeds up to 3 "
                  "hops away, and each seed's plan reads confidence whose "
                  "inputs reach 3 hops further");

  const std::size_t n = network_->num_nodes();
  const std::size_t num_shards = shards_.size();
  const unsigned threads =
      config_.threads == 0 ? default_threads() : config_.threads;
  const bool obs_on = obs::enabled();

  // Phase-1 config: sessions parallelize across shards, not within; the
  // per-shard IFF/Group results are discarded (recomputed seam-exactly in
  // phases 2–3), so run the cheap oracle flood and skip grouping. The
  // degenerate-vote flip must mirror the unsharded session, which flips on
  // ANY dead node — a fully-alive shard would otherwise keep the
  // optimistic vote while the global run does not.
  PipelineConfig shard_cfg = config;
  shard_cfg.threads = 1;
  shard_cfg.group = false;
  shard_cfg.iff.use_message_passing = false;
  if (num_alive_ < n) shard_cfg.ubf.degenerate_is_boundary = false;

  std::vector<PipelineResult> phase1(num_shards);
  parallel_for(
      num_shards,
      [&](std::size_t s) {
        Stopwatch clock;
        phase1[s] = shards_[s]->session->run(shard_cfg);
        shards_[s]->info.last_detect_ms = clock.elapsed_ms();
      },
      threads);

  // Halo exchange 1: owned UBF candidate flags (exact — see sharded.hpp)
  // into one global vector. Sequential: vector<bool> writes are not
  // bit-safe concurrently, and this is a linear pass.
  PipelineResult result;
  result.ubf_candidates.assign(n, false);
  // Confidence is exchanged whenever the shard sessions produced it: under
  // obs, and on escalated runs (the effort planner forces it on, and the
  // unsharded session publishes it — the equality contract follows).
  const bool want_conf = obs_on || config.escalate.enabled;
  std::vector<float> confidence;
  if (want_conf) confidence.assign(n, 0.0f);
  std::size_t fallbacks = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const Shard& shard = *shards_[s];
    const PipelineResult& r = phase1[s];
    for (NodeId l : shard.owned_local) {
      const NodeId g = shard.to_global[l];
      result.ubf_candidates[g] = r.ubf_candidates[l];
      if (want_conf && !r.ubf_confidence.empty()) {
        confidence[g] = r.ubf_confidence[l];
      }
    }
    fallbacks += r.frame_fallbacks;
    // Localization and escalation effort are per-shard-session; the
    // global view is the sum (halo nodes are built/planned by every shard
    // that sees them, and the merged counters say so rather than
    // pretending otherwise).
    result.localize_stats.merge(r.localize_stats);
    result.effort.merge(r.effort);
  }
  result.frame_fallbacks = fallbacks;

  // Phase 2: seam-exact IFF. Each shard floods the exchanged exact
  // candidate flags over its subnetwork; owned verdicts and counts equal
  // the global flood because every ttl-bounded candidate path reaching an
  // owned node stays inside the halo.
  sim::ProtocolOptions proto;
  proto.repeat = config.flood_repeat;
  std::vector<std::vector<bool>> iff_local(num_shards);
  std::vector<std::vector<std::uint32_t>> counts_local(num_shards);
  std::vector<sim::RunStats> iff_stats(num_shards);
  parallel_for(
      num_shards,
      [&](std::size_t s) {
        const Shard& shard = *shards_[s];
        const std::size_t m = shard.to_global.size();
        std::vector<bool> cand(m);
        for (std::size_t l = 0; l < m; ++l) {
          cand[l] = result.ubf_candidates[shard.to_global[l]];
        }
        std::vector<std::uint32_t> counts;
        iff_local[s] =
            iff_filter(shard.net, cand, config.iff, &iff_stats[s], proto,
                       obs_on ? &counts : nullptr);
        counts_local[s] = std::move(counts);
      },
      threads);

  result.boundary.assign(n, false);
  std::vector<std::uint32_t> counts;
  if (obs_on) counts.assign(n, 0);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const Shard& shard = *shards_[s];
    for (NodeId l : shard.owned_local) {
      const NodeId g = shard.to_global[l];
      result.boundary[g] = iff_local[s][l];
      if (obs_on) counts[g] = counts_local[s][l];
    }
    result.iff_cost += iff_stats[s];
  }

  // Phase 3: shard-local grouping on the exchanged exact boundary flags,
  // then a min-id union-find stitch over global ids. Root tags record
  // which per-shard group first claimed a component; a union across two
  // tags is a seam stitch.
  stitch_merges_ = 0;
  if (config.group) {
    std::vector<std::vector<std::vector<NodeId>>> groups_local(num_shards);
    std::vector<sim::RunStats> group_stats(num_shards);
    parallel_for(
        num_shards,
        [&](std::size_t s) {
          const Shard& shard = *shards_[s];
          const std::size_t m = shard.to_global.size();
          std::vector<bool> bnd(m);
          for (std::size_t l = 0; l < m; ++l) {
            bnd[l] = result.boundary[shard.to_global[l]];
          }
          BoundaryGroups local = group_boundaries(
              shard.net, bnd, config.iff.use_message_passing,
              &group_stats[s], proto);
          groups_local[s].reserve(local.groups.size());
          for (std::vector<NodeId>& grp : local.groups) {
            for (NodeId& v : grp) v = shard.to_global[v];
            groups_local[s].push_back(std::move(grp));
          }
        },
        threads);

    std::vector<NodeId> parent(n, kInvalidNode);
    std::vector<std::uint32_t> tag(n, 0);
    const auto find = [&](NodeId v) {
      while (parent[v] != v) {
        parent[v] = parent[parent[v]];
        v = parent[v];
      }
      return v;
    };
    std::uint32_t next_tag = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
      result.grouping_cost += group_stats[s];
      for (const std::vector<NodeId>& grp : groups_local[s]) {
        ++next_tag;
        const NodeId anchor = grp[0];
        if (parent[anchor] == kInvalidNode) {
          parent[anchor] = anchor;
          tag[anchor] = next_tag;
        }
        for (std::size_t i = 1; i < grp.size(); ++i) {
          const NodeId u = grp[i];
          if (parent[u] == kInvalidNode) {
            parent[u] = u;
            tag[u] = next_tag;
          }
          const NodeId ra = find(anchor);
          const NodeId rb = find(u);
          if (ra == rb) continue;
          if (tag[ra] != tag[rb]) ++stitch_merges_;
          const NodeId lo = std::min(ra, rb);
          const NodeId hi = std::max(ra, rb);
          parent[hi] = lo;  // min-id root ⇒ the root IS the group leader
        }
      }
    }

    result.groups.leader.assign(n, kInvalidNode);
    for (NodeId v = 0; v < n; ++v) {
      if (result.boundary[v]) result.groups.leader[v] = find(v);
    }
    // Ascending node scan ⇒ groups appear in leader order with sorted
    // members, matching group_boundaries' output convention.
    std::vector<std::size_t> group_index(n, static_cast<std::size_t>(-1));
    for (NodeId v = 0; v < n; ++v) {
      const NodeId lead = result.groups.leader[v];
      if (lead == kInvalidNode) continue;
      if (lead == v) {
        group_index[lead] = result.groups.groups.size();
        result.groups.groups.emplace_back();
      }
      result.groups.groups[group_index[lead]].push_back(v);
    }
  }

  result.crashed_nodes = n - num_alive_;
  if (want_conf) result.ubf_confidence = std::move(confidence);
  if (obs_on) {
    if (config.group) {
      result.group_quality = score_boundaries(
          result.groups, config.iff.theta, result.ubf_confidence, counts);
    }

    obs::Registry& reg = obs::Registry::global();
    reg.counter("shard.runs").add(1);
    reg.counter("shard.stitch_merges").add(stitch_merges_);
    reg.gauge("shard.count").set(static_cast<double>(num_shards));
    std::size_t halo_total = 0;
    obs::Histogram& latency = reg.histogram(
        "shard.detect_ms",
        {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000});
    for (const auto& shard : shards_) {
      halo_total += shard->info.halo_nodes;
      latency.observe(shard->info.last_detect_ms);
    }
    reg.gauge("shard.halo_nodes").set(static_cast<double>(halo_total));
  }
  return result;
}

void ShardedDetector::apply(const NetworkDelta& delta) {
  BALLFIT_REQUIRE(delta.moved.empty() || mutable_network_ != nullptr,
                  "NetworkDelta contains moves but the detector observes a "
                  "const network — construct the ShardedDetector with a "
                  "mutable net::Network to enable node motion");
  const std::size_t n = network_->num_nodes();
  // Validate the whole delta against the global alive state before any
  // mutation (mirrors DetectionSession::apply).
  const auto check_list = [&](const std::vector<NodeId>& ids,
                              bool want_alive, const char* what) {
    std::vector<NodeId> sorted = ids;
    std::sort(sorted.begin(), sorted.end());
    BALLFIT_REQUIRE(
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "duplicate node id in NetworkDelta list");
    for (NodeId v : ids) {
      BALLFIT_REQUIRE(v < n, "NetworkDelta node id out of range");
      BALLFIT_REQUIRE((alive_[v] != 0) == want_alive, what);
    }
  };
  check_list(delta.crashed, true, "crash of an already-dead node");
  check_list(delta.revived, false, "revive of an already-alive node");

  // Moves: membership is positional and fixed at construction, so a move
  // is admissible only while it changes nothing about who must see the
  // node — it must stay in its owning cell, and every shard whose rim
  // contains the post-move position must already hold the node as a
  // member. (Shards that saw the old position but not the new one keep
  // the node as a harmless extra member — induced adjacency drops the
  // out-of-range edges.) Both checks run before any state changes.
  if (!delta.moved.empty()) {
    CellLattice lat;
    lat.origin = lattice_origin_;
    for (int d = 0; d < 3; ++d) {
      lat.step[d] = lattice_step_[d];
      lat.k[d] = lattice_k_[d];
    }
    std::vector<NodeId> moved_ids;
    moved_ids.reserve(delta.moved.size());
    for (const net::NodeMove& m : delta.moved) {
      BALLFIT_REQUIRE(m.node < n, "NetworkDelta node id out of range");
      moved_ids.push_back(m.node);
    }
    std::sort(moved_ids.begin(), moved_ids.end());
    BALLFIT_REQUIRE(std::adjacent_find(moved_ids.begin(), moved_ids.end()) ==
                        moved_ids.end(),
                    "duplicate node id in NetworkDelta list");
    for (const net::NodeMove& m : delta.moved) {
      BALLFIT_REQUIRE(
          lat.cell_of(m.new_position) == own_cell_[m.node],
          "NetworkDelta: node " + std::to_string(m.node) +
              " moved out of its owning lattice cell — shard membership "
              "is positional; apply the moves with Network::apply_moves "
              "and rebuild the ShardedDetector");
      const double c[3] = {m.new_position.x, m.new_position.y,
                           m.new_position.z};
      std::size_t lo[3], hi[3];
      for (int d = 0; d < 3; ++d) {
        lo[d] = lat.axis_cell(c[d] - halo_dist_, d);
        hi[d] = lat.axis_cell(c[d] + halo_dist_, d);
      }
      const std::span<const std::uint32_t> seen = shards_of(m.node);
      for (std::size_t z = lo[2]; z <= hi[2]; ++z)
        for (std::size_t y = lo[1]; y <= hi[1]; ++y)
          for (std::size_t x = lo[0]; x <= hi[0]; ++x) {
            const std::uint32_t s =
                shard_of_cell_[(z * lat.k[1] + y) * lat.k[0] + x];
            if (s == static_cast<std::uint32_t>(-1)) continue;
            BALLFIT_REQUIRE(
                std::binary_search(seen.begin(), seen.end(), s),
                "NetworkDelta: node " + std::to_string(m.node) +
                    " moved into the halo rim of a shard that does not "
                    "see it — shard membership is positional; apply the "
                    "moves with Network::apply_moves and rebuild the "
                    "ShardedDetector");
          }
    }
  }

  // Route to every shard whose cell-or-rim holds the node: the owner must
  // recompute the node's flag, and halo shards must re-localize the owned
  // neighborhoods that could hear it. Moves route like crashes — with the
  // pre-move membership, which the validation above proved covers the
  // post-move rims too.
  std::vector<NetworkDelta> local(shards_.size());
  const auto route = [&](const std::vector<NodeId>& ids, bool crashed) {
    for (NodeId g : ids) {
      for (std::uint32_t s : shards_of(g)) {
        const NodeId l = shards_[s]->local_of(g);
        (crashed ? local[s].crashed : local[s].revived).push_back(l);
      }
    }
  };
  route(delta.crashed, true);
  route(delta.revived, false);
  for (const net::NodeMove& m : delta.moved) {
    for (std::uint32_t s : shards_of(m.node)) {
      local[s].moved.push_back(
          net::NodeMove{shards_[s]->local_of(m.node), m.new_position});
    }
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!local[s].empty()) shards_[s]->session->apply(local[s]);
  }
  if (!delta.moved.empty()) mutable_network_->apply_moves(delta.moved);
  for (NodeId v : delta.crashed) alive_[v] = 0;
  for (NodeId v : delta.revived) alive_[v] = 1;
  num_alive_ = num_alive_ - delta.crashed.size() + delta.revived.size();
}

}  // namespace ballfit::core
