#pragma once

/// \file ubf.hpp
/// Unit Ball Fitting (paper Sec. II-A, Algorithm 1).
///
/// Node i is a *potential boundary node* iff an empty unit ball (radius
/// r = 1+ε in radio-range units, no node strictly inside) can be placed
/// touching i. By Lemma 1 it suffices to test the balls determined by i and
/// two of its neighbors (Eq. 1 / `solve_trisphere`), checking emptiness
/// against the one-hop neighborhood — Θ(ρ²) balls × Θ(ρ) nodes each.
///
/// The kernel implementation is optimized (sorted candidate cache, pair
/// pruning, blocker memoization, per-thread scratch arena — see ubf.cpp)
/// but **classification-exact**: every optimization only skips work whose
/// outcome is provably determined, so `test_node`, `collect_empty_balls`,
/// and both detectors return bit-identical results to the naive
/// Algorithm 1 double loop (tests/ubf_oracle_test.cpp asserts this), and
/// results are independent of the worker thread count.

#include <vector>

#include "geom/vec3.hpp"
#include "localization/local_frame.hpp"
#include "net/network.hpp"

namespace ballfit::core {

struct UbfConfig {
  /// ε of Definition 4: the test radius is r = (1+ε) · radio_range.
  /// Larger values restrict detection to larger holes (Sec. II-A3, last
  /// paragraph); ε→0 detects holes of any size.
  double epsilon = 1e-6;
  /// When > 0, overrides the ball radius outright (in absolute units);
  /// used by the hole-size-selectivity ablation.
  double radius_override = 0.0;
  /// A node strictly inside means distance < r − inside_tolerance; the
  /// slack keeps the three on-surface nodes from being miscounted.
  double inside_tolerance = 1e-9;
  /// Extra slack (× radio range) applied to *two-hop* members only: an
  /// imported position blocks a candidate ball only when it is inside by
  /// more than this margin. Imported coordinates carry stitching noise;
  /// without the margin, borderline imports leak into truly-empty outward
  /// balls and suppress real boundary nodes. Interior candidate balls are
  /// unaffected — their blockers sit well inside.
  double two_hop_inside_margin = 0.1;
  /// The emptiness test widens its slack by `noise_margin_factor ×
  /// coordinate-uncertainty` so that coordinate jitter of the expected
  /// magnitude cannot spuriously block a truly empty ball. The uncertainty
  /// is self-calibrated per node from the embedding's residual stress
  /// (LocalFrame::stress_rms); `measurement_error_hint` (fraction of the
  /// radio range) is the fallback when a caller tests raw coordinates.
  double measurement_error_hint = 0.0;
  double noise_margin_factor = 3.0;
  /// Upper bound (× radio range) on the noise-derived slack.
  double noise_margin_cap = 0.3;
  /// Minimum number of empty candidate balls required to declare boundary.
  /// A real boundary node sees many empty balls (every outward-leaning
  /// witness pair yields one); a coordinate-noise fluke sees one or two.
  /// 1 reproduces the literal algorithm; higher values trade missing for
  /// mistaken under noise. With cross-verification on (the default) one
  /// verified ball suffices — the witnesses already suppress flukes.
  std::size_t min_empty_balls = 1;
  /// Frame-reliability gate: a node whose embedding kept a residual stress
  /// far above the ranging-noise floor knows its local frame is folded; a
  /// boundary claim from such a frame is most likely a false positive (and
  /// a single deep false positive can bridge two boundary groups). Nodes
  /// with stress_rms > gate_factor·(e/√3 + gate_floor)·R abstain. Set
  /// gate_factor <= 0 to disable.
  double stress_gate_factor = 2.0;
  double stress_gate_floor = 0.01;
  /// Cross-verification (localized, one extra query round): each empty
  /// ball node i finds is defined by two witnesses j, k; both re-run the
  /// emptiness check for the same ball in their own frames and veto it if
  /// they see a member inside. A fold-over localization artifact in i's
  /// frame must be mirrored in both witnesses' independent frames to
  /// survive, which removes nearly all deep interior false positives —
  /// the ones that bridge boundary groups. Costs one message round.
  bool cross_verify = true;
  /// How many empty balls a node collects as verification candidates.
  std::size_t verify_pool = 6;
  /// Nodes whose neighborhood is too small to embed (< 4 members) cannot
  /// run the test; with this flag (default) they declare themselves
  /// boundary — a degenerate neighborhood is itself boundary evidence.
  bool degenerate_is_boundary = true;

  /// Which nodes the emptiness check sees. A candidate ball touching node
  /// i reaches up to 2r from i, so soundness needs the positions of nodes
  /// within two hops (this is exactly the "within 2r" of Lemma 1):
  ///   - kTwoHop (default): emptiness is tested against the stitched
  ///     two-hop frame. One extra message round (each neighbor shares its
  ///     one-hop frame); reproduces the paper's reported accuracy.
  ///   - kOneHop: the literal Algorithm 1 listing — emptiness against the
  ///     one-hop view only. At realistic densities (avg degree ≈ 18) this
  ///     floods the result with interior false positives, because some
  ///     candidate ball's one-hop-visible lens (expected occupancy ≈ 6
  ///     nodes) is empty by chance among the Θ(ρ²) balls tested. Kept as
  ///     an ablation (`bench_ablation_scope`).
  enum class EmptinessScope { kOneHop, kTwoHop };
  EmptinessScope scope = EmptinessScope::kTwoHop;
};

/// Graded boundary-ness for observability (ROADMAP: "confidence-scored
/// boundaries"). The binary flag thresholds the empty-ball vote count at
/// `min_empty_balls` (= T); the confidence keeps the margin:
///
///   conf = votes / (votes + T),  votes counted up to max(verify_pool, T)
///
/// so conf >= 0.5 exactly when the flag is set, conf = 0 means no empty
/// ball at all, and saturation approaches (but never reaches) 1. Nodes
/// that never run the test score by provenance: crashed or stress-gated
/// nodes 0, degenerate-neighborhood fallbacks exactly 0.5 when they vote
/// boundary (a claim with no ball evidence) and 0 otherwise. On the vote
/// counting paths (no cross-verification, or true coordinates) the score
/// is monotone non-increasing in T for a fixed network
/// (tests/ubf_test.cpp::MonotoneInMinEmptyBalls); under cross-verification
/// the collected candidate pool grows with T, so a rejected candidate can
/// be displaced by a verifying one and the margin may wobble within the
/// same side of the threshold.
///
/// Computing the margin means counting votes *past* the decision
/// threshold, work the classification itself never needs — so confidence
/// is only produced when a caller passes an output vector, and the
/// pipeline only asks when `obs::enabled()`. Flags are bit-identical
/// either way: the extra counting starts after the threshold decision is
/// already determined.
double vote_confidence(std::size_t votes, std::size_t threshold);

/// Per-node work counters (Theorem 1's Θ(ρ³) in the wild).
struct UbfNodeDiagnostics {
  /// Candidate balls whose emptiness was evaluated (count, default 0).
  /// Pair pruning never changes this: pruned pairs are exactly those whose
  /// trisphere solve would have produced zero balls.
  std::size_t balls_tested = 0;
  /// Member distance checks performed across all emptiness scans (count).
  /// This is where the optimized kernel wins: nearest-first ordering,
  /// the sorted-distance cutoff, and blocker memoization shrink it far
  /// below the naive balls × members product.
  std::size_t nodes_checked = 0;
  /// Empty candidate balls found before the sweep stopped (count).
  std::size_t empty_balls = 0;
  /// True when the vote threshold (`UbfConfig::min_empty_balls`) was met.
  bool found_empty_ball = false;
};

class UnitBallFitting {
 public:
  explicit UnitBallFitting(const net::Network& network, UbfConfig config = {});

  /// The effective test radius r.
  double ball_radius() const { return radius_; }

  /// True when a frame with residual `stress_rms` passes the reliability
  /// gate for the configured error hint (see UbfConfig::stress_gate_*).
  bool frame_reliable(double stress_rms) const;

  /// Localized detection: each node embeds its neighborhood with
  /// `localizer` (two-hop MDS-MAP patches by default, one-hop frames when
  /// the scope is kOneHop), runs the test in its own local frame, and —
  /// with cross_verify — has its witnesses confirm each empty ball.
  /// `threads` parallelizes the per-node work (0 = hardware concurrency).
  /// `frame_fallbacks`, when non-null, receives the number of nodes whose
  /// neighborhood was too small/degenerate to embed — the nodes that voted
  /// `degenerate_is_boundary` instead of running the test.
  std::vector<bool> detect(const localization::Localizer& localizer,
                           unsigned threads = 0,
                           std::size_t* frame_fallbacks = nullptr) const;

  /// The ball-test round of `detect` on prebuilt frames (one per node, as
  /// produced by `localization::build_all_frames` with the scope from
  /// `config()`). `detect` is exactly frame build + this call, bit for
  /// bit; `DetectionSession` uses the split to reuse frames across runs.
  /// `confidence`, when non-null, is resized to num_nodes and filled with
  /// the per-node score described at `vote_confidence` (requests the
  /// extra vote counting; flags are unaffected).
  std::vector<bool> detect_on_frames(
      const std::vector<localization::LocalFrame>& frames,
      unsigned threads = 0, std::size_t* frame_fallbacks = nullptr,
      std::vector<float>* confidence = nullptr) const;

  /// Masked / partial variant of `detect_on_frames` for incremental
  /// re-detection: recomputes `flags[i]` (1 = candidate) for every node
  /// with `(*run_mask)[i] != 0` (all nodes when null), leaving the rest
  /// untouched; dead nodes (`alive` given and `(*alive)[i] == 0`) always
  /// get 0. Each node's flag is a pure function of (its frame, its one-hop
  /// witnesses' frames, config), so running this over a dirty set that
  /// covers every node whose inputs changed reproduces the full run
  /// bit-identically. Thread-count independent like `detect`.
  /// `confidence`, when non-null, must be pre-sized to num_nodes; entries
  /// are rewritten under the same mask discipline as `flags`.
  /// `effort`, when non-null (sized num_nodes), is the per-node vote-budget
  /// mask of the effort control plane: a `kFull` node collects twice the
  /// configured `verify_pool` of candidate balls (denser ball tests for
  /// marginal nodes); `kCheap`/`kDefault` keep the configured budget —
  /// the budget is only ever *grown*, never shrunk, because the candidate
  /// enumeration order is fixed and an extended sweep only appends votes,
  /// so a kFull node's verified count is monotone non-decreasing in the
  /// pool and its flag can flip 0→1 but never 1→0 relative to the default
  /// budget. A null (or all-non-kFull) mask is bit-identical to the
  /// pre-plan behavior.
  void update_flags_on_frames(
      const std::vector<localization::LocalFrame>& frames,
      std::vector<char>& flags, const std::vector<char>* alive = nullptr,
      const std::vector<char>* run_mask = nullptr, unsigned threads = 0,
      std::vector<float>* confidence = nullptr,
      const std::vector<localization::EffortClass>* effort = nullptr) const;

  /// Oracle detection using true coordinates (the 0%-error reference; UBF
  /// is invariant to the rigid-motion gauge, so this equals `detect` with a
  /// noiseless measurement model). `frame_fallbacks` counts nodes with too
  /// few neighbors to test, as in `detect`. `alive`, when non-null, masks
  /// crashed nodes out of every neighborhood (dead nodes test nothing and
  /// are never counted as fallbacks); null is the pre-mask behavior.
  std::vector<bool> detect_with_true_coordinates(
      std::size_t* frame_fallbacks = nullptr,
      const std::vector<char>* alive = nullptr,
      std::vector<float>* confidence = nullptr) const;

  /// The per-node kernel: runs the unit-ball test on an explicit point set.
  /// `coords[self_index]` is the node under test; entries with index
  /// < witness_count are one-hop members (candidate-ball witnesses);
  /// entries beyond are emptiness-only members (two-hop view). All share
  /// one (arbitrary) frame. `coord_uncertainty` is the caller's estimate
  /// of per-coordinate error (absolute units); negative derives it from
  /// `measurement_error_hint`.
  bool test_node(const std::vector<geom::Vec3>& coords, std::size_t self_index,
                 std::size_t witness_count,
                 UbfNodeDiagnostics* diag = nullptr,
                 double coord_uncertainty = -1.0) const;

  /// Overload where every member is a witness (pure one-hop view).
  bool test_node(const std::vector<geom::Vec3>& coords, std::size_t self_index,
                 UbfNodeDiagnostics* diag = nullptr) const {
    return test_node(coords, self_index, coords.size(), diag);
  }

  /// Like test_node, but collects up to `max_balls` empty balls as
  /// (witness_j, witness_k) index pairs instead of stopping at the vote
  /// threshold. Used by the cross-verification round. `diag`, when
  /// non-null, receives the per-node work counts (balls tested, nodes
  /// checked, empty balls found) for observability.
  std::vector<std::pair<std::size_t, std::size_t>> collect_empty_balls(
      const std::vector<geom::Vec3>& coords, std::size_t self_index,
      std::size_t witness_count, std::size_t max_balls,
      double coord_uncertainty, UbfNodeDiagnostics* diag = nullptr) const;

  /// Number of empty candidate balls, counted in exactly `test_node`'s
  /// enumeration order but *without* stopping at the vote threshold —
  /// the sweep runs until `cap` empty balls are found or the pairs are
  /// exhausted. With cap >= min_empty_balls, `count >= min_empty_balls`
  /// reproduces `test_node`'s verdict bit for bit; the surplus over the
  /// threshold is the confidence margin.
  std::size_t count_empty_balls(const std::vector<geom::Vec3>& coords,
                                std::size_t self_index,
                                std::size_t witness_count, std::size_t cap,
                                double coord_uncertainty = -1.0,
                                UbfNodeDiagnostics* diag = nullptr) const;

  /// Witness-side check: in `frame` (the witness's own frame), is at least
  /// one of the balls through nodes (a, b, c) empty? Returns true when the
  /// witness cannot evaluate the triple (missing members / bad frame) —
  /// benefit of the doubt.
  bool witness_confirms(const localization::LocalFrame& frame, net::NodeId a,
                        net::NodeId b, net::NodeId c) const;

  const UbfConfig& config() const { return config_; }

  /// Squared "strictly inside" thresholds (absolute units²): a member at
  /// squared distance d² from a candidate center blocks the ball iff
  /// d² < one_hop_sq (one-hop members) or d² < two_hop_sq (imported
  /// two-hop members; always <= one_hop_sq). Public so reference
  /// implementations (oracle tests, baselines) can reproduce the exact
  /// emptiness predicate.
  struct InsideLimits {
    double one_hop_sq;
    double two_hop_sq;
  };
  /// The thresholds at a given per-coordinate uncertainty (absolute units;
  /// negative derives it from `measurement_error_hint` — see the margin
  /// discussion above).
  InsideLimits inside_limits(double coord_uncertainty) const;

 private:
  const net::Network* network_;
  UbfConfig config_;
  double radius_;
};

}  // namespace ballfit::core
