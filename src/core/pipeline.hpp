#pragma once

/// \file pipeline.hpp
/// End-to-end boundary node identification (paper Sec. II):
///   measurements → local MDS frames → UBF → IFF → grouping.
///
/// This is the primary public entry point of the library. Everything it
/// consumes is one-hop-local per node; `PipelineResult` carries the outputs
/// of every stage so benches and tests can inspect intermediates.
///
/// The pipeline can run under fault injection (`PipelineConfig::faults`):
/// crashed nodes drop out of localization and detection entirely (they are
/// masked out of the alive set, keeping their original ids), the IFF and
/// grouping floods lose/duplicate messages per the model, and nodes whose
/// local frame cannot be built (too few surviving neighbors) fall back to
/// a conservative non-boundary vote instead of the optimistic
/// degenerate-is-boundary default. The run degrades — precision/recall
/// shrink with loss and crash rates — but never throws or hangs. Faulted
/// runs execute through the same cached `core::DetectionSession` stage
/// graph as reliable ones and compose with incremental deltas; see
/// session.hpp.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/grouping.hpp"
#include "core/iff.hpp"
#include "core/stats.hpp"
#include "core/ubf.hpp"
#include "net/measurement.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"

namespace ballfit::core {

struct PipelineConfig {
  /// Phase-1 detection knobs (ball radius ε, emptiness scope, vote
  /// thresholds, cross-verification) — see UbfConfig field docs.
  UbfConfig ubf;
  /// Phase-2 fragment-filtering knobs (θ = 20, T = 3 by default).
  IffConfig iff;
  /// Maximum distance measurement error as a fraction of the radio range,
  /// in [0, 1] (Sec. IV-A sweeps this axis; default 0 = exact ranging).
  double measurement_error = 0.0;
  /// Seed for the measurement noise process (default 1). Same network +
  /// same config + same seed reproduces the run exactly.
  std::uint64_t noise_seed = 1;
  /// Skip local MDS and hand UBF the true coordinates — the noiseless
  /// reference configuration (and a localization ablation). Default off.
  bool use_true_coordinates = false;
  /// Localization knobs, including the equivalence tier and the
  /// warm-start/adaptive/blocked optimization flags. Every field is part
  /// of the Measure stage fingerprint, so cached artifacts never mix
  /// tiers (or any other localizer setting).
  localization::LocalizerConfig localizer;
  /// Run boundary grouping after IFF (default on).
  bool group = true;
  /// Worker threads for the per-node stages (count; default 0 = hardware
  /// concurrency). Results are thread-count-independent — the per-thread
  /// scratch arenas in the UBF kernel carry no state between nodes.
  unsigned threads = 0;
  /// Fault injection for the communication stages (default nullopt =
  /// reliable network, the paper's assumption). The crash mechanisms fold
  /// into the session alive-mask before the stages run; the
  /// loss/duplication channel is applied by a per-stage fault model whose
  /// seed derives deterministically from `seed`, so each flood artifact is
  /// a pure function of (inputs, channel config) — cacheable, and
  /// reproducible from the config alone. Scheduled (`crash_at_round`) and
  /// per-round crashes fire when `DetectionSession::advance_faults` moves
  /// the crash clock between runs, not during a run's own floods. With an
  /// all-zero config installed the outputs are bit-identical to the
  /// reliable run.
  std::optional<sim::FaultConfig> faults;
  /// Retransmissions per newly learned fact in the floods (count, >= 1,
  /// default 1); raise to 2–3 to keep floods converging at 10–20% loss.
  std::uint32_t flood_repeat = 1;
};

struct PipelineResult {
  /// Stage outputs.
  std::vector<bool> ubf_candidates;  ///< after Phase 1 (UBF)
  std::vector<bool> boundary;        ///< after Phase 2 (IFF) — final answer
  BoundaryGroups groups;             ///< boundary grouping (if requested)

  /// Quality telemetry (additive — never feeds back into the flags above).
  /// Populated only when `obs::enabled()` at run time; empty otherwise, so
  /// the disabled pipeline does none of the extra vote counting. Faulted
  /// runs produce them too (they share the cached stage kernels).
  std::vector<float> ubf_confidence;          ///< per node, see vote_confidence
  std::vector<BoundaryQuality> group_quality; ///< parallel to groups.groups

  /// Cost of the IFF flooding protocol.
  sim::RunStats iff_cost;
  /// Cost of the grouping protocol.
  sim::RunStats grouping_cost;

  /// Effort accounting of the run's Localize stage (warm-start hit/miss
  /// counts, sweeps executed vs. budget, restarts skipped, plateau/stress
  /// exits). Reflects the most recent frame build the session executed —
  /// a cache-hit run repeats the stats of the build that produced the
  /// cached frames. All zeros on the true-coordinates path.
  localization::FrameBuildStats localize_stats;
  /// Nodes whose local frame could not be built (degenerate/starved
  /// neighborhood). Under faults these voted non-boundary conservatively;
  /// otherwise they voted `UbfConfig::degenerate_is_boundary`.
  std::size_t frame_fallbacks = 0;
  /// Nodes down at the end of the run (0 without fault injection).
  std::size_t crashed_nodes = 0;
  /// Cumulative fault effects across every stage (zeros without faults).
  sim::FaultStats fault_stats;

  /// Convenience: number of nodes flagged after each phase.
  std::size_t num_candidates() const;
  std::size_t num_boundary() const;
};

/// Runs the full detection pipeline on `network`.
PipelineResult detect_boundaries(const net::Network& network,
                                 const PipelineConfig& config = {});

/// Runs detection and scores it against ground truth in one call.
DetectionStats detect_and_evaluate(const net::Network& network,
                                   const PipelineConfig& config = {});

}  // namespace ballfit::core
