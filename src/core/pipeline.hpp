#pragma once

/// \file pipeline.hpp
/// End-to-end boundary node identification (paper Sec. II):
///   measurements → local MDS frames → UBF → IFF → grouping.
///
/// This is the primary public entry point of the library. Everything it
/// consumes is one-hop-local per node; `PipelineResult` carries the outputs
/// of every stage so benches and tests can inspect intermediates.
///
/// The pipeline can run under fault injection (`PipelineConfig::faults`):
/// crashed nodes drop out of localization and detection entirely (they are
/// masked out of the alive set, keeping their original ids), the IFF and
/// grouping floods lose/duplicate messages per the model, and nodes whose
/// local frame cannot be built (too few surviving neighbors) fall back to
/// a conservative non-boundary vote instead of the optimistic
/// degenerate-is-boundary default. The run degrades — precision/recall
/// shrink with loss and crash rates — but never throws or hangs. Faulted
/// runs execute through the same cached `core::DetectionSession` stage
/// graph as reliable ones and compose with incremental deltas; see
/// session.hpp.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/grouping.hpp"
#include "core/iff.hpp"
#include "core/stats.hpp"
#include "core/ubf.hpp"
#include "net/measurement.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"

namespace ballfit::core {

/// Per-node effort class (defined by the localization layer so every
/// effort-spending kernel can consume it without depending on core).
using localization::EffortClass;

/// The effort control plane's per-node decision vector: one `EffortClass`
/// per node, derived from first-pass confidence and stress signals by
/// `build_effort_plan`. Consumed by the scheduled frame build (per-node
/// sweep/eigen/restart overrides) and the UBF vote-budget mask.
struct EffortPlan {
  std::vector<EffortClass> classes;

  std::size_t count(EffortClass c) const {
    std::size_t k = 0;
    for (const EffortClass x : classes) k += x == c;
    return k;
  }
};

/// Opt-in Escalate stage knobs (see DetectionSession). Every field is part
/// of the Escalate artifact fingerprint, like every other config field.
struct EscalationConfig {
  /// Run the Escalate stage after UBF: plan effort from the first pass,
  /// re-run Localize/UBF at kFull effort on the marginal neighborhoods,
  /// and fold the improved verdicts back. Off (the default) is
  /// bit-identical to a session without the stage.
  bool enabled = false;
  /// A node with |confidence − 0.5| below this margin is marginal: its
  /// empty-ball vote landed within a hair of the decision threshold, so
  /// it escalates to kFull effort. (conf = votes/(votes+T); with T = 1
  /// the first verified ball already lands at 0.5, so the margin measures
  /// how far past/short of the threshold the vote went.)
  double margin = 0.12;
  /// A node with |confidence − 0.5| at or above `relax × margin` (and a
  /// reliable frame) is confidently classified and drops to kCheap effort
  /// on any future rebuild of its frame; in between stays kDefault.
  double relax = 2.0;
};

/// Accounting of one Escalate stage execution, exported as `effort.*` obs
/// counters and through `PipelineResult::effort`; summed across shards by
/// the sharded merge. All zeros when the stage is disabled or skipped
/// (true-coordinates runs).
struct EffortStats {
  /// Plan composition over all nodes (dead nodes plan kCheap).
  std::uint64_t planned_cheap = 0;
  std::uint64_t planned_default = 0;
  std::uint64_t planned_full = 0;
  /// Alive kFull-planned nodes — the escalation seeds E.
  std::uint64_t escalated_nodes = 0;
  /// Frames re-embedded at kFull effort (the seed set E itself — each
  /// marginal node's own embedding, the dominant input to its ball test).
  std::uint64_t frames_rebuilt = 0;
  /// Nodes whose ball test re-ran (the 1-hop reach of E — every test
  /// that reads a rebuilt frame).
  std::uint64_t nodes_retested = 0;
  /// SMACOF sweeps spent by the escalation rebuild itself.
  std::uint64_t escalation_sweeps = 0;
  /// Estimated sweeps saved vs. a flat kFull run: alive frames × the
  /// configured two-hop budget, minus the sweeps the first pass and the
  /// escalation actually executed, floored at 0. An estimate (a flat
  /// kFull run may also restart), not a measurement.
  std::uint64_t sweeps_saved_vs_full = 0;
  /// Retested nodes whose adopted flag differs from the first pass.
  std::uint64_t flags_changed = 0;
  /// Retested nodes whose escalated verdict was adopted / reverted by the
  /// fold-back monotonicity rule (adopted + kept_first_pass =
  /// nodes_retested over alive nodes).
  std::uint64_t adopted = 0;
  std::uint64_t kept_first_pass = 0;
  /// Σ |conf_escalated − conf_first_pass| over adopted nodes, and the
  /// number of terms (kept as a sum + count so shard merges stay exact).
  double confidence_delta_sum = 0.0;
  std::uint64_t confidence_delta_count = 0;

  void merge(const EffortStats& o) {
    planned_cheap += o.planned_cheap;
    planned_default += o.planned_default;
    planned_full += o.planned_full;
    escalated_nodes += o.escalated_nodes;
    frames_rebuilt += o.frames_rebuilt;
    nodes_retested += o.nodes_retested;
    escalation_sweeps += o.escalation_sweeps;
    sweeps_saved_vs_full += o.sweeps_saved_vs_full;
    flags_changed += o.flags_changed;
    adopted += o.adopted;
    kept_first_pass += o.kept_first_pass;
    confidence_delta_sum += o.confidence_delta_sum;
    confidence_delta_count += o.confidence_delta_count;
  }
};

struct PipelineConfig {
  /// Phase-1 detection knobs (ball radius ε, emptiness scope, vote
  /// thresholds, cross-verification) — see UbfConfig field docs.
  UbfConfig ubf;
  /// Phase-2 fragment-filtering knobs (θ = 20, T = 3 by default).
  IffConfig iff;
  /// Maximum distance measurement error as a fraction of the radio range,
  /// in [0, 1] (Sec. IV-A sweeps this axis; default 0 = exact ranging).
  double measurement_error = 0.0;
  /// Seed for the measurement noise process (default 1). Same network +
  /// same config + same seed reproduces the run exactly.
  std::uint64_t noise_seed = 1;
  /// Skip local MDS and hand UBF the true coordinates — the noiseless
  /// reference configuration (and a localization ablation). Default off.
  bool use_true_coordinates = false;
  /// Localization knobs, including the equivalence tier and the
  /// warm-start/adaptive/blocked optimization flags. Every field is part
  /// of the Measure stage fingerprint, so cached artifacts never mix
  /// tiers (or any other localizer setting).
  localization::LocalizerConfig localizer;
  /// Run boundary grouping after IFF (default on).
  bool group = true;
  /// Worker threads for the per-node stages (count; default 0 = hardware
  /// concurrency). Results are thread-count-independent — the per-thread
  /// scratch arenas in the UBF kernel carry no state between nodes.
  unsigned threads = 0;
  /// Fault injection for the communication stages (default nullopt =
  /// reliable network, the paper's assumption). The crash mechanisms fold
  /// into the session alive-mask before the stages run; the
  /// loss/duplication channel is applied by a per-stage fault model whose
  /// seed derives deterministically from `seed`, so each flood artifact is
  /// a pure function of (inputs, channel config) — cacheable, and
  /// reproducible from the config alone. Scheduled (`crash_at_round`) and
  /// per-round crashes fire when `DetectionSession::advance_faults` moves
  /// the crash clock between runs, not during a run's own floods. With an
  /// all-zero config installed the outputs are bit-identical to the
  /// reliable run.
  std::optional<sim::FaultConfig> faults;
  /// Retransmissions per newly learned fact in the floods (count, >= 1,
  /// default 1); raise to 2–3 to keep floods converging at 10–20% loss.
  std::uint32_t flood_repeat = 1;
  /// Opt-in Escalate stage: confidence-driven re-runs of Localize/UBF at
  /// kFull effort on marginal neighborhoods (no-op on the
  /// true-coordinates path). Off by default — bit-identical to a build
  /// without the stage.
  EscalationConfig escalate;
};

struct PipelineResult {
  /// Stage outputs.
  std::vector<bool> ubf_candidates;  ///< after Phase 1 (UBF)
  std::vector<bool> boundary;        ///< after Phase 2 (IFF) — final answer
  BoundaryGroups groups;             ///< boundary grouping (if requested)

  /// Quality telemetry (additive — never feeds back into the flags above).
  /// Populated only when `obs::enabled()` at run time — or, for the
  /// confidence vector, when `escalate.enabled` (the effort planner reads
  /// it, so escalated runs always carry it); empty otherwise, so the
  /// disabled pipeline does none of the extra vote counting. Faulted runs
  /// produce them too (they share the cached stage kernels).
  std::vector<float> ubf_confidence;          ///< per node, see vote_confidence
  std::vector<BoundaryQuality> group_quality; ///< parallel to groups.groups

  /// Cost of the IFF flooding protocol.
  sim::RunStats iff_cost;
  /// Cost of the grouping protocol.
  sim::RunStats grouping_cost;

  /// Effort accounting of the run's Localize stage (warm-start hit/miss
  /// counts, sweeps executed vs. budget, restarts skipped, plateau/stress
  /// exits). Reflects the most recent frame build the session executed —
  /// a cache-hit run repeats the stats of the build that produced the
  /// cached frames. All zeros on the true-coordinates path.
  localization::FrameBuildStats localize_stats;
  /// Nodes whose local frame could not be built (degenerate/starved
  /// neighborhood). Under faults these voted non-boundary conservatively;
  /// otherwise they voted `UbfConfig::degenerate_is_boundary`.
  std::size_t frame_fallbacks = 0;
  /// Effort control plane accounting (all zeros unless
  /// `PipelineConfig::escalate.enabled`). Summed across shards by
  /// `ShardedDetector` — halo nodes are planned/retested once per shard
  /// that sees them, so the sharded totals overcount like the other cost
  /// telemetry.
  EffortStats effort;
  /// Nodes down at the end of the run (0 without fault injection).
  std::size_t crashed_nodes = 0;
  /// Cumulative fault effects across every stage (zeros without faults).
  sim::FaultStats fault_stats;

  /// Convenience: number of nodes flagged after each phase.
  std::size_t num_candidates() const;
  std::size_t num_boundary() const;
};

/// Derives the per-node effort plan from first-pass signals: dead or
/// frame-less nodes plan kCheap (nothing to spend effort on), nodes whose
/// frame failed the UBF stress gate or whose confidence sits within
/// `esc.margin` of the 0.5 decision threshold plan kFull, nodes at or
/// beyond `relax × margin` with a reliable frame plan kCheap, everything
/// else kDefault. `confidence` must be full-sized (the Escalate stage
/// guarantees it by forcing confidence collection on); `alive` may be null
/// (all alive). Pure function of its inputs.
EffortPlan build_effort_plan(const std::vector<float>& confidence,
                             const std::vector<localization::LocalFrame>& frames,
                             const std::vector<char>* alive,
                             const UnitBallFitting& ubf,
                             const EscalationConfig& esc);

/// Runs the full detection pipeline on `network`.
PipelineResult detect_boundaries(const net::Network& network,
                                 const PipelineConfig& config = {});

/// Runs detection and scores it against ground truth in one call.
DetectionStats detect_and_evaluate(const net::Network& network,
                                   const PipelineConfig& config = {});

}  // namespace ballfit::core
