#pragma once

/// \file pipeline.hpp
/// End-to-end boundary node identification (paper Sec. II):
///   measurements → local MDS frames → UBF → IFF → grouping.
///
/// This is the primary public entry point of the library. Everything it
/// consumes is one-hop-local per node; `PipelineResult` carries the outputs
/// of every stage so benches and tests can inspect intermediates.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/grouping.hpp"
#include "core/iff.hpp"
#include "core/stats.hpp"
#include "core/ubf.hpp"
#include "net/measurement.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace ballfit::core {

struct PipelineConfig {
  UbfConfig ubf;
  IffConfig iff;
  /// Distance measurement error as a fraction of the radio range
  /// (Sec. IV-A sweeps this from 0 to 1).
  double measurement_error = 0.0;
  /// Seed for the measurement noise process.
  std::uint64_t noise_seed = 1;
  /// Skip local MDS and hand UBF the true coordinates — the noiseless
  /// reference configuration (and a localization ablation).
  bool use_true_coordinates = false;
  /// Run grouping after IFF.
  bool group = true;
  /// Worker threads for the per-node stages (0 = hardware concurrency).
  unsigned threads = 0;
};

struct PipelineResult {
  /// Stage outputs.
  std::vector<bool> ubf_candidates;  ///< after Phase 1 (UBF)
  std::vector<bool> boundary;        ///< after Phase 2 (IFF) — final answer
  BoundaryGroups groups;             ///< boundary grouping (if requested)

  /// Cost of the IFF flooding protocol.
  sim::RunStats iff_cost;
  /// Cost of the grouping protocol.
  sim::RunStats grouping_cost;

  /// Convenience: number of nodes flagged after each phase.
  std::size_t num_candidates() const;
  std::size_t num_boundary() const;
};

/// Runs the full detection pipeline on `network`.
PipelineResult detect_boundaries(const net::Network& network,
                                 const PipelineConfig& config = {});

/// Runs detection and scores it against ground truth in one call.
DetectionStats detect_and_evaluate(const net::Network& network,
                                   const PipelineConfig& config = {});

}  // namespace ballfit::core
