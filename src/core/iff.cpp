#include "core/iff.hpp"

#include "common/assert.hpp"
#include "sim/protocols.hpp"

namespace ballfit::core {

std::vector<bool> iff_filter(const net::Network& network,
                             const std::vector<bool>& candidates,
                             const IffConfig& config, sim::RunStats* stats,
                             const sim::ProtocolOptions& proto,
                             std::vector<std::uint32_t>* counts_out) {
  BALLFIT_REQUIRE(candidates.size() == network.num_nodes(),
                  "candidate mask size mismatch");

  std::vector<std::uint32_t> counts =
      config.use_message_passing
          ? sim::ttl_flood_count(network, candidates, config.ttl, stats,
                                 proto)
          : sim::ttl_flood_count_oracle(network, candidates, config.ttl);

  std::vector<bool> boundary(network.num_nodes(), false);
  for (net::NodeId v = 0; v < network.num_nodes(); ++v) {
    boundary[v] = candidates[v] && counts[v] >= config.theta;
  }
  if (counts_out != nullptr) *counts_out = std::move(counts);
  return boundary;
}

}  // namespace ballfit::core
