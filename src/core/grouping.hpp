#pragma once

/// \file grouping.hpp
/// Boundary grouping (paper Sec. II-B, last paragraph).
///
/// Nodes on the same boundary are connected through boundary nodes only;
/// nodes on different boundaries are not. A min-id leader flood over the
/// boundary subgraph therefore labels each closed boundary with a unique
/// leader — one group per inner hole plus one for the outer boundary.

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/protocols.hpp"

namespace ballfit::core {

struct BoundaryGroups {
  /// Per node: the leader (smallest id) of its boundary, or kInvalidNode
  /// for non-boundary nodes.
  std::vector<net::NodeId> leader;
  /// The groups themselves, sorted by leader id; each group's nodes sorted.
  std::vector<std::vector<net::NodeId>> groups;

  std::size_t count() const { return groups.size(); }
};

/// Groups the boundary nodes. With `use_message_passing` the grouping runs
/// as the leader-flood protocol; otherwise as a component oracle. `proto`
/// selects fault injection / retransmission for the flood (message-passing
/// mode only); under loss a physically-connected boundary can split into
/// several reported groups — a graceful over-segmentation, never a merge.
BoundaryGroups group_boundaries(const net::Network& network,
                                const std::vector<bool>& boundary,
                                bool use_message_passing = true,
                                sim::RunStats* stats = nullptr,
                                const sim::ProtocolOptions& proto = {});

/// Graded per-boundary quality for observability. Each component is a
/// saturating x/(x+scale) map into [0, 1) so 0.5 sits exactly at the
/// corresponding decision threshold, matching the per-node confidence
/// convention (core::vote_confidence):
///
///   - `size_score`: group cardinality against θ — a surviving boundary
///     barely above the IFF fragment threshold scores near 0.5, a large
///     closed surface saturates toward 1.
///   - `mean_confidence`: mean UBF confidence of the members (0 when the
///     run produced no confidence — see vote_confidence gating).
///   - `flood_margin`: mean over members of count/(count+θ), the graded
///     form of the IFF verdict (0 when counts are unavailable).
///   - `score`: mean of the available components.
struct BoundaryQuality {
  net::NodeId leader = net::kInvalidNode;
  std::size_t size = 0;
  double size_score = 0.0;
  double mean_confidence = 0.0;
  double flood_margin = 0.0;
  double score = 0.0;
};

/// Scores every group. `confidence` (per-node, from the UBF stage) and
/// `flood_counts` (per-node, from iff_filter's `counts_out`) may be empty
/// when the run did not produce them; their components then drop out of
/// `score`. Pure function of its inputs — no messaging, no obs calls.
std::vector<BoundaryQuality> score_boundaries(
    const BoundaryGroups& groups, std::uint32_t theta,
    const std::vector<float>& confidence = {},
    const std::vector<std::uint32_t>& flood_counts = {});

}  // namespace ballfit::core
