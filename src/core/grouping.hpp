#pragma once

/// \file grouping.hpp
/// Boundary grouping (paper Sec. II-B, last paragraph).
///
/// Nodes on the same boundary are connected through boundary nodes only;
/// nodes on different boundaries are not. A min-id leader flood over the
/// boundary subgraph therefore labels each closed boundary with a unique
/// leader — one group per inner hole plus one for the outer boundary.

#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/protocols.hpp"

namespace ballfit::core {

struct BoundaryGroups {
  /// Per node: the leader (smallest id) of its boundary, or kInvalidNode
  /// for non-boundary nodes.
  std::vector<net::NodeId> leader;
  /// The groups themselves, sorted by leader id; each group's nodes sorted.
  std::vector<std::vector<net::NodeId>> groups;

  std::size_t count() const { return groups.size(); }
};

/// Groups the boundary nodes. With `use_message_passing` the grouping runs
/// as the leader-flood protocol; otherwise as a component oracle. `proto`
/// selects fault injection / retransmission for the flood (message-passing
/// mode only); under loss a physically-connected boundary can split into
/// several reported groups — a graceful over-segmentation, never a merge.
BoundaryGroups group_boundaries(const net::Network& network,
                                const std::vector<bool>& boundary,
                                bool use_message_passing = true,
                                sim::RunStats* stats = nullptr,
                                const sim::ProtocolOptions& proto = {});

}  // namespace ballfit::core
