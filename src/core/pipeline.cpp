#include "core/pipeline.hpp"

#include <algorithm>

#include "core/session.hpp"

namespace ballfit::core {

std::size_t PipelineResult::num_candidates() const {
  return static_cast<std::size_t>(
      std::count(ubf_candidates.begin(), ubf_candidates.end(), true));
}

std::size_t PipelineResult::num_boundary() const {
  return static_cast<std::size_t>(
      std::count(boundary.begin(), boundary.end(), true));
}

PipelineResult detect_boundaries(const net::Network& network,
                                 const PipelineConfig& config) {
  // One-shot wrapper over the staged engine: a fresh session's first run
  // misses every cache, which is exactly the legacy monolithic pipeline
  // (bit-identical outputs, same span tree and pipeline.* counters).
  DetectionSession session(network);
  return session.run(config);
}

DetectionStats detect_and_evaluate(const net::Network& network,
                                   const PipelineConfig& config) {
  const PipelineResult result = detect_boundaries(network, config);
  return evaluate_detection(network, result.boundary);
}

}  // namespace ballfit::core
