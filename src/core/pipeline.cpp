#include "core/pipeline.hpp"

#include <algorithm>
#include <optional>

#include "common/parallel.hpp"
#include "localization/local_frame.hpp"
#include "obs/trace.hpp"

namespace ballfit::core {

std::size_t PipelineResult::num_candidates() const {
  return static_cast<std::size_t>(
      std::count(ubf_candidates.begin(), ubf_candidates.end(), true));
}

std::size_t PipelineResult::num_boundary() const {
  return static_cast<std::size_t>(
      std::count(boundary.begin(), boundary.end(), true));
}

namespace {

/// Phase-1 detection on an arbitrary network (the full one, or the
/// surviving subnetwork under crashes). Returns the per-node flags and
/// counts frame fallbacks.
std::vector<bool> run_ubf(const net::Network& network,
                          const PipelineConfig& config,
                          const UbfConfig& ubf_config, unsigned threads,
                          std::size_t* frame_fallbacks) {
  const UnitBallFitting ubf(network, ubf_config);
  if (config.use_true_coordinates) {
    BALLFIT_SPAN("ubf");
    return ubf.detect_with_true_coordinates(frame_fallbacks);
  }
  std::optional<net::NoisyDistanceModel> model;
  std::optional<localization::Localizer> localizer;
  {
    BALLFIT_SPAN("measurement");
    model.emplace(network, config.measurement_error, config.noise_seed);
    localizer.emplace(network, *model);
  }
  BALLFIT_SPAN("ubf");
  return ubf.detect(*localizer, threads, frame_fallbacks);
}

}  // namespace

PipelineResult detect_boundaries(const net::Network& network,
                                 const PipelineConfig& config) {
  BALLFIT_SPAN("pipeline");
  PipelineResult result;
  const std::size_t n = network.num_nodes();
  const unsigned threads =
      config.threads == 0 ? default_threads() : config.threads;

  // One fault model spans every communication stage of this run, so its
  // crash clock and loss streams are continuous across IFF and grouping.
  std::optional<sim::FaultModel> fault_model;
  sim::ProtocolOptions proto;
  if (config.faults) {
    fault_model.emplace(*config.faults, n);
    proto.faults = &*fault_model;
    proto.repeat = config.flood_repeat;
  }

  // Nodes know their ranging error specification; the UBF emptiness slack
  // scales with it unless the caller already set a hint explicitly.
  UbfConfig ubf_config = config.ubf;
  if (ubf_config.measurement_error_hint == 0.0 &&
      !config.use_true_coordinates) {
    ubf_config.measurement_error_hint = config.measurement_error;
  }
  // Under faults a frame that cannot be built votes non-boundary: the
  // optimistic default would promote every crash-starved neighborhood to
  // "boundary" and flood the result with false positives. An inert fault
  // config keeps the reliable semantics — the hook alone must not change
  // any output bit.
  if (config.faults && config.faults->any()) {
    ubf_config.degenerate_is_boundary = false;
  }

  // --- Phase 1: Unit Ball Fitting on per-node local frames. The per-node
  // work (local MDS + ball tests) is independent and read-only, so it is
  // split across threads; vector<bool> is not safe for concurrent writes,
  // hence the char staging buffer (inside UnitBallFitting::detect).
  if (fault_model && fault_model->num_down() > 0) {
    // Crashed nodes contribute no measurements and run no test: Phase 1
    // operates on the subnetwork induced by the survivors. Neighborhoods
    // shrink accordingly — nodes starved below the embeddable minimum are
    // the frame_fallbacks counted here.
    std::vector<net::NodeId> alive;
    alive.reserve(n);
    for (net::NodeId v = 0; v < n; ++v) {
      if (!fault_model->is_down(v)) alive.push_back(v);
    }
    result.ubf_candidates.assign(n, false);
    if (!alive.empty()) {
      std::vector<geom::Vec3> positions;
      std::vector<bool> truth;
      positions.reserve(alive.size());
      truth.reserve(alive.size());
      for (net::NodeId v : alive) {
        positions.push_back(network.position(v));
        truth.push_back(network.is_ground_truth_boundary(v));
      }
      net::Network survivors(std::move(positions), std::move(truth),
                             network.radio_range());
      const std::vector<bool> sub_flags =
          run_ubf(survivors, config, ubf_config, threads,
                  &result.frame_fallbacks);
      for (std::size_t i = 0; i < alive.size(); ++i) {
        result.ubf_candidates[alive[i]] = sub_flags[i];
      }
    }
  } else {
    result.ubf_candidates =
        run_ubf(network, config, ubf_config, threads,
                &result.frame_fallbacks);
  }

  // --- Phase 2: Isolated Fragment Filtering.
  {
    BALLFIT_SPAN("iff");
    result.boundary = iff_filter(network, result.ubf_candidates, config.iff,
                                 &result.iff_cost, proto);
  }

  // --- Grouping.
  if (config.group) {
    BALLFIT_SPAN("grouping");
    result.groups =
        group_boundaries(network, result.boundary,
                         config.iff.use_message_passing,
                         &result.grouping_cost, proto);
  }

  if (fault_model) {
    result.crashed_nodes = fault_model->num_down();
    result.fault_stats = fault_model->stats();
  }

  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("pipeline.runs").add(1);
    reg.counter("pipeline.nodes").add(network.num_nodes());
    reg.counter("pipeline.ubf_candidates").add(result.num_candidates());
    reg.counter("pipeline.boundary_nodes").add(result.num_boundary());
    reg.counter("pipeline.frame_fallbacks").add(result.frame_fallbacks);
    if (fault_model) {
      reg.counter("pipeline.crashed_nodes").add(result.crashed_nodes);
      reg.counter("pipeline.dropped").add(result.fault_stats.dropped);
      reg.counter("pipeline.duplicated").add(result.fault_stats.duplicated);
    }
  }
  return result;
}

DetectionStats detect_and_evaluate(const net::Network& network,
                                   const PipelineConfig& config) {
  const PipelineResult result = detect_boundaries(network, config);
  return evaluate_detection(network, result.boundary);
}

}  // namespace ballfit::core
