#include "core/pipeline.hpp"

#include <algorithm>
#include <optional>

#include "common/parallel.hpp"
#include "localization/local_frame.hpp"
#include "obs/trace.hpp"

namespace ballfit::core {

std::size_t PipelineResult::num_candidates() const {
  return static_cast<std::size_t>(
      std::count(ubf_candidates.begin(), ubf_candidates.end(), true));
}

std::size_t PipelineResult::num_boundary() const {
  return static_cast<std::size_t>(
      std::count(boundary.begin(), boundary.end(), true));
}

PipelineResult detect_boundaries(const net::Network& network,
                                 const PipelineConfig& config) {
  BALLFIT_SPAN("pipeline");
  PipelineResult result;
  const unsigned threads =
      config.threads == 0 ? default_threads() : config.threads;

  // Nodes know their ranging error specification; the UBF emptiness slack
  // scales with it unless the caller already set a hint explicitly.
  UbfConfig ubf_config = config.ubf;
  if (ubf_config.measurement_error_hint == 0.0 &&
      !config.use_true_coordinates) {
    ubf_config.measurement_error_hint = config.measurement_error;
  }
  const UnitBallFitting ubf(network, ubf_config);

  // --- Phase 1: Unit Ball Fitting on per-node local frames. The per-node
  // work (local MDS + ball tests) is independent and read-only, so it is
  // split across threads; vector<bool> is not safe for concurrent writes,
  // hence the char staging buffer.
  if (config.use_true_coordinates) {
    BALLFIT_SPAN("ubf");
    result.ubf_candidates = ubf.detect_with_true_coordinates();
  } else {
    std::optional<net::NoisyDistanceModel> model;
    std::optional<localization::Localizer> localizer;
    {
      BALLFIT_SPAN("measurement");
      model.emplace(network, config.measurement_error, config.noise_seed);
      localizer.emplace(network, *model);
    }
    BALLFIT_SPAN("ubf");
    result.ubf_candidates = ubf.detect(*localizer, threads);
  }

  // --- Phase 2: Isolated Fragment Filtering.
  {
    BALLFIT_SPAN("iff");
    result.boundary = iff_filter(network, result.ubf_candidates, config.iff,
                                 &result.iff_cost);
  }

  // --- Grouping.
  if (config.group) {
    BALLFIT_SPAN("grouping");
    result.groups =
        group_boundaries(network, result.boundary,
                         config.iff.use_message_passing, &result.grouping_cost);
  }

  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("pipeline.runs").add(1);
    reg.counter("pipeline.nodes").add(network.num_nodes());
    reg.counter("pipeline.ubf_candidates").add(result.num_candidates());
    reg.counter("pipeline.boundary_nodes").add(result.num_boundary());
  }
  return result;
}

DetectionStats detect_and_evaluate(const net::Network& network,
                                   const PipelineConfig& config) {
  const PipelineResult result = detect_boundaries(network, config);
  return evaluate_detection(network, result.boundary);
}

}  // namespace ballfit::core
