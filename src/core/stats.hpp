#pragma once

/// \file stats.hpp
/// Detection-quality metrics matching the paper's evaluation
/// (Figs. 1(g)–1(i) and 11(a)–11(c)).

#include <array>
#include <cstddef>
#include <vector>

#include "net/network.hpp"

namespace ballfit::core {

/// Hop-distance histogram buckets: index h−1 holds the share of nodes at
/// exactly h hops for h = 1..3; index 3 aggregates > 3 hops (the paper's
/// plots stop at 3 because nothing lands beyond).
using HopDistribution = std::array<double, 4>;

struct DetectionStats {
  std::size_t total_nodes = 0;
  std::size_t true_boundary = 0;   ///< ground-truth boundary node count
  std::size_t found = 0;           ///< nodes the algorithm flagged
  std::size_t correct = 0;         ///< flagged ∧ ground truth
  std::size_t mistaken = 0;        ///< flagged ∧ interior
  std::size_t missing = 0;         ///< ground truth ∧ not flagged

  /// Fractions of the ground-truth boundary population (Fig. 11(a) y-axis).
  double found_rate() const;
  double correct_rate() const;
  double mistaken_rate() const;
  double missing_rate() const;

  /// Raw bucket counts (1, 2, 3, >3 hops) — kept as counts so that runs can
  /// be pooled exactly (`merge_stats`).
  std::array<std::size_t, 4> mistaken_hop_counts{};
  std::array<std::size_t, 4> missing_hop_counts{};

  /// Fig. 11(b): hops from each mistaken node to the nearest *correctly
  /// identified* boundary node, as a share of all mistaken nodes.
  HopDistribution mistaken_hops() const;
  /// Fig. 11(c): hops from each missing node to the nearest correctly
  /// identified boundary node, as a share of all missing nodes.
  HopDistribution missing_hops() const;
};

/// Scores `detected` against the network's ground-truth labels, including
/// both hop distributions.
DetectionStats evaluate_detection(const net::Network& network,
                                  const std::vector<bool>& detected);

/// Pools the counting fields and hop distributions of several runs (used by
/// Fig. 11, which aggregates >10,000 boundary nodes across scenarios).
DetectionStats merge_stats(const std::vector<DetectionStats>& parts);

}  // namespace ballfit::core
