#include "geom/grid.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace ballfit::geom {

SpatialGrid::SpatialGrid(const std::vector<Vec3>& points, double cell_size)
    : points_(&points), cell_size_(cell_size) {
  BALLFIT_REQUIRE(cell_size > 0.0, "SpatialGrid cell_size must be positive");
  cells_.reserve(points.size());
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    cells_[hash_key(key_for(points[i]))].push_back(i);
  }
}

std::vector<std::uint32_t> SpatialGrid::query_radius(const Vec3& q,
                                                     double radius) const {
  std::vector<std::uint32_t> out;
  for_each_in_radius(q, radius, [&](std::uint32_t idx) { out.push_back(idx); });
  return out;
}

std::int64_t SpatialGrid::nearest(const Vec3& q) const {
  if (points_->empty()) return -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  std::int64_t best = -1;
  // Expanding shell search: once a candidate is found in shell s, points in
  // shells beyond (s+1) cannot beat it, because any point there is at least
  // s * cell_size away.
  const CellKey base = key_for(q);
  for (std::int64_t shell = 0;; ++shell) {
    bool any_cell = false;
    for (std::int64_t dx = -shell; dx <= shell; ++dx)
      for (std::int64_t dy = -shell; dy <= shell; ++dy)
        for (std::int64_t dz = -shell; dz <= shell; ++dz) {
          if (std::max({std::llabs(dx), std::llabs(dy), std::llabs(dz)}) !=
              shell)
            continue;  // only the surface of the shell
          auto it = cells_.find(
              hash_key({base.x + dx, base.y + dy, base.z + dz}));
          if (it == cells_.end()) continue;
          any_cell = true;
          for (std::uint32_t idx : it->second) {
            double d2 = (*points_)[idx].distance_sq_to(q);
            if (d2 < best_d2) {
              best_d2 = d2;
              best = idx;
            }
          }
        }
    if (best >= 0) {
      const double guaranteed = static_cast<double>(shell) * cell_size_;
      if (best_d2 <= guaranteed * guaranteed) return best;
    }
    // Safety: if we searched far past the populated area, stop.
    if (!any_cell && shell > 0 && best >= 0) return best;
    if (shell > 4096) return best;  // pathological fallback
  }
}

}  // namespace ballfit::geom
