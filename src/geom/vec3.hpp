#pragma once

/// \file vec3.hpp
/// 3D vector/point value type.
///
/// `Vec3` is the coordinate currency of the whole library: node positions,
/// unit-ball centers, mesh vertices. It is a plain aggregate with value
/// semantics and constexpr arithmetic.

#include <cmath>
#include <iosfwd>

namespace ballfit::geom {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) {
    x /= s; y /= s; z /= s;
    return *this;
  }

  friend constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

  constexpr bool operator==(const Vec3&) const = default;

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double norm_sq() const { return dot(*this); }
  double norm() const { return std::sqrt(norm_sq()); }

  /// Unit vector in this direction. Returns the zero vector when the input
  /// norm is below `eps` (callers dealing with degenerate geometry check
  /// `norm()` themselves first where it matters).
  Vec3 normalized(double eps = 1e-30) const {
    double n = norm();
    if (n < eps) return {};
    return *this / n;
  }

  double distance_to(const Vec3& o) const { return (*this - o).norm(); }
  constexpr double distance_sq_to(const Vec3& o) const {
    return (*this - o).norm_sq();
  }
};

std::ostream& operator<<(std::ostream& os, const Vec3& v);

/// Linear interpolation: `lerp(a, b, 0) == a`, `lerp(a, b, 1) == b`.
constexpr Vec3 lerp(const Vec3& a, const Vec3& b, double t) {
  return a + (b - a) * t;
}

}  // namespace ballfit::geom
