#include "geom/sampling.hpp"

#include <cmath>
#include <numeric>

#include "geom/grid.hpp"

namespace ballfit::geom {

Vec3 sample_in_box(Rng& rng, const Aabb& box) {
  return {rng.uniform(box.min.x, box.max.x), rng.uniform(box.min.y, box.max.y),
          rng.uniform(box.min.z, box.max.z)};
}

Vec3 sample_on_unit_sphere(Rng& rng) {
  // Marsaglia (1972): uniform on S² without trig.
  double u, v, s;
  do {
    u = rng.uniform(-1.0, 1.0);
    v = rng.uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0);
  const double factor = 2.0 * std::sqrt(1.0 - s);
  return {u * factor, v * factor, 1.0 - 2.0 * s};
}

Vec3 sample_on_sphere(Rng& rng, const Vec3& c, double r) {
  return c + sample_on_unit_sphere(rng) * r;
}

Vec3 sample_in_ball(Rng& rng, const Vec3& c, double r) {
  // Rejection from the bounding cube: acceptance ≈ 52%, still cheap.
  for (;;) {
    Vec3 p{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
           rng.uniform(-1.0, 1.0)};
    if (p.norm_sq() <= 1.0) return c + p * r;
  }
}

Vec3 sample_on_triangle(Rng& rng, const Vec3& a, const Vec3& b,
                        const Vec3& c) {
  const double su = std::sqrt(rng.uniform());
  const double v = rng.uniform();
  return a * (1.0 - su) + b * (su * (1.0 - v)) + c * (su * v);
}

std::vector<Vec3> poisson_thin(Rng& rng, std::vector<Vec3> points,
                               double min_dist) {
  if (points.empty() || min_dist <= 0.0) return points;

  // Fisher–Yates shuffle so the greedy pass has no positional bias.
  for (std::size_t i = points.size() - 1; i > 0; --i) {
    std::size_t j = rng.uniform_index(i + 1);
    std::swap(points[i], points[j]);
  }

  SpatialGrid grid(points, min_dist);
  std::vector<bool> kept(points.size(), false);
  std::vector<Vec3> survivors;
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Early-exit visitor: the first kept conflict settles the point, so
    // the rest of the neighborhood never needs to be walked.
    const bool conflict = !grid.for_each_in_ball(
        points[i], min_dist,
        [&](std::uint32_t j) { return !(j < i && kept[j]); });
    if (!conflict) {
      kept[i] = true;
      survivors.push_back(points[i]);
    }
  }
  return survivors;
}

}  // namespace ballfit::geom
