#pragma once

/// \file sampling.hpp
/// Uniform random sampling primitives used by the network generators.

#include <vector>

#include "common/rng.hpp"
#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace ballfit::geom {

/// Uniform point inside an axis-aligned box.
Vec3 sample_in_box(Rng& rng, const Aabb& box);

/// Uniform point on the unit sphere (Marsaglia 1972).
Vec3 sample_on_unit_sphere(Rng& rng);

/// Uniform point on a sphere of radius `r` centered at `c`.
Vec3 sample_on_sphere(Rng& rng, const Vec3& c, double r);

/// Uniform point inside a ball of radius `r` centered at `c`.
Vec3 sample_in_ball(Rng& rng, const Vec3& c, double r);

/// Uniform point on triangle (a,b,c) via the square-root parameterization.
Vec3 sample_on_triangle(Rng& rng, const Vec3& a, const Vec3& b, const Vec3& c);

/// Thins `points` so that no two survivors are closer than `min_dist`
/// (greedy dart-throwing elimination, order given by `rng` shuffle).
/// Produces Poisson-disk-like spacing from an oversampled input set.
std::vector<Vec3> poisson_thin(Rng& rng, std::vector<Vec3> points,
                               double min_dist);

}  // namespace ballfit::geom
