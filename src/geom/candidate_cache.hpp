#pragma once

/// \file candidate_cache.hpp
/// Per-node sorted-by-distance candidate cache for repeated ball-emptiness
/// scans against one fixed point set.
///
/// The Unit Ball Fitting kernel tests Θ(ρ²) candidate balls per node, and
/// every test scans the same member set. This cache is rebuilt once per
/// node and then read Θ(ρ²) times: it stores the members (minus the focus
/// point itself) in structure-of-arrays layout, sorted ascending by
/// distance to the focus. The sort order buys two things:
///
///   - **Nearest-first scans**: a scan that walks slots in order checks the
///     members most likely to block a candidate ball first.
///   - **A sound tail cutoff**: every candidate ball center c satisfies
///     |c − focus| = r, so a member u can only lie within `limit` of c when
///     |u − focus| < |c − focus| + limit. Once a slot's distance passes
///     that bound, no later slot can either — the scan stops.
///
/// The cache is designed to live in a per-thread scratch arena: `rebuild`
/// reuses the previous capacity, so steady-state operation performs no
/// allocations.

#include <cstdint>
#include <utility>
#include <vector>

#include "geom/vec3.hpp"

namespace ballfit::geom {

class CandidateCache {
 public:
  /// Sentinel returned by `slot_of` for the focus point (which has no slot).
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Rebuilds the cache over `points`, excluding `points[focus]`. Slots are
  /// sorted ascending by squared distance to the focus, ties broken by
  /// original index, so the layout is deterministic.
  void rebuild(const std::vector<Vec3>& points, std::size_t focus);

  /// Number of cached candidates (`points.size() - 1`).
  std::size_t size() const { return xs_.size(); }

  /// SoA coordinate arrays, indexed by slot.
  const double* xs() const { return xs_.data(); }
  const double* ys() const { return ys_.data(); }
  const double* zs() const { return zs_.data(); }

  /// Squared distance of each slot to the focus, ascending.
  const double* dist_sq() const { return dist_sq_.data(); }

  /// Original point index of a slot.
  std::uint32_t original_index(std::size_t slot) const { return orig_[slot]; }

  /// Slot of original point index `i`; `kNoSlot` for the focus.
  std::uint32_t slot_of(std::size_t i) const { return slot_of_[i]; }

  /// Squared distance from the slot's point to `q`.
  double dist_sq_to(std::size_t slot, const Vec3& q) const {
    const double dx = xs_[slot] - q.x;
    const double dy = ys_[slot] - q.y;
    const double dz = zs_[slot] - q.z;
    return dx * dx + dy * dy + dz * dz;
  }

 private:
  std::vector<double> xs_, ys_, zs_, dist_sq_;
  std::vector<std::uint32_t> orig_;     // slot -> original index
  std::vector<std::uint32_t> slot_of_;  // original index -> slot
  std::vector<std::pair<double, std::uint32_t>> sort_keys_;  // rebuild temp
};

}  // namespace ballfit::geom
