#include "geom/trisphere.hpp"

#include <algorithm>
#include <cmath>

namespace ballfit::geom {

bool triangle_circumcircle(const Vec3& a, const Vec3& b, const Vec3& d,
                           Vec3& center, double& radius, Vec3& unit_normal,
                           double tol) {
  // Work relative to `a` for numerical stability.
  const Vec3 ab = b - a;
  const Vec3 ad = d - a;
  const Vec3 n = ab.cross(ad);
  const double n2 = n.norm_sq();

  // Degeneracy scale: compare the doubled triangle area |n| against the
  // square of the longest edge so the test is translation/scale aware.
  const double edge_scale =
      std::max({ab.norm_sq(), ad.norm_sq(), (b - d).norm_sq()});
  if (n2 <= tol * tol * edge_scale * edge_scale || edge_scale == 0.0) {
    return false;
  }

  // Classic circumcenter formula:
  //   cc = a + (|ad|²(n×ab) + |ab|²(ad×n)) / (2|n|²)
  const Vec3 rel =
      (n.cross(ab) * ad.norm_sq() + ad.cross(n) * ab.norm_sq()) / (2.0 * n2);
  center = a + rel;
  radius = rel.norm();
  unit_normal = n / std::sqrt(n2);
  return true;
}

TrisphereResult solve_trisphere(const Vec3& a, const Vec3& b, const Vec3& d,
                                double r, double tol) {
  TrisphereResult result;

  Vec3 cc, n;
  double R = 0.0;
  if (!triangle_circumcircle(a, b, d, cc, R, n, tol)) {
    result.status = TrisphereResult::Status::kCollinear;
    return result;
  }

  // Tangent band: R within tol·r of r (on either side) collapses the two
  // mirrored centers into one in-plane center. Beyond it on the high side
  // there is no fitting sphere.
  if (R >= r * (1.0 - tol)) {
    if (R <= r * (1.0 + tol)) {
      result.centers[0] = cc;
      result.count = 1;
      result.status = TrisphereResult::Status::kOneCenter;
      return result;
    }
    result.status = TrisphereResult::Status::kTooSpread;
    return result;
  }

  const double h = std::sqrt(std::max(0.0, r * r - R * R));

  result.centers[0] = cc + n * h;
  result.centers[1] = cc - n * h;
  result.count = 2;
  result.status = TrisphereResult::Status::kTwoCenters;
  return result;
}

}  // namespace ballfit::geom
