#include "geom/trisphere.hpp"

#include <algorithm>
#include <cmath>

namespace ballfit::geom {

bool triangle_circumcircle(const Vec3& a, const Vec3& b, const Vec3& d,
                           Vec3& center, double& radius, Vec3& unit_normal,
                           double tol) {
  // Work relative to `a` for numerical stability.
  const Vec3 ab = b - a;
  const Vec3 ad = d - a;
  const Vec3 n = ab.cross(ad);
  const double n2 = n.norm_sq();

  // Degeneracy scale: compare the doubled triangle area |n| against the
  // square of the longest edge so the test is translation/scale aware.
  const double edge_scale =
      std::max({ab.norm_sq(), ad.norm_sq(), (b - d).norm_sq()});
  if (n2 <= tol * tol * edge_scale * edge_scale || edge_scale == 0.0) {
    return false;
  }

  // Classic circumcenter formula:
  //   cc = a + (|ad|²(n×ab) + |ab|²(ad×n)) / (2|n|²)
  const Vec3 rel =
      (n.cross(ab) * ad.norm_sq() + ad.cross(n) * ab.norm_sq()) / (2.0 * n2);
  center = a + rel;
  radius = rel.norm();
  unit_normal = n / std::sqrt(n2);
  return true;
}

TrisphereResult solve_trisphere(const Vec3& a, const Vec3& b, const Vec3& d,
                                double r, double tol) {
  TrisphereResult result;

  // Same math as triangle_circumcircle, but kept in squared form: the UBF
  // kernel calls this Θ(ρ²) times per node, and the general helper pays
  // three square roots (radius, unit normal, mirror offset) where one
  // suffices — the centers only ever need n · sqrt((r² − R²)/|n|²).
  const Vec3 ab = b - a;
  const Vec3 ad = d - a;
  const Vec3 n = ab.cross(ad);
  const double n2 = n.norm_sq();
  const double edge_scale =
      std::max({ab.norm_sq(), ad.norm_sq(), (b - d).norm_sq()});
  if (n2 <= tol * tol * edge_scale * edge_scale || edge_scale == 0.0) {
    result.status = TrisphereResult::Status::kCollinear;
    return result;
  }
  const Vec3 rel =
      (n.cross(ab) * ad.norm_sq() + ad.cross(n) * ab.norm_sq()) / (2.0 * n2);
  const double R2 = rel.norm_sq();

  // Tangent band: circumradius R within tol·r of r (on either side)
  // collapses the two mirrored centers into one in-plane center. Beyond it
  // on the high side there is no fitting sphere.
  const double lo = r * (1.0 - tol);
  if (R2 >= lo * lo) {
    const double hi = r * (1.0 + tol);
    if (R2 <= hi * hi) {
      result.centers[0] = a + rel;
      result.count = 1;
      result.status = TrisphereResult::Status::kOneCenter;
      return result;
    }
    result.status = TrisphereResult::Status::kTooSpread;
    return result;
  }

  const Vec3 cc = a + rel;
  const Vec3 off = n * std::sqrt(std::max(0.0, (r * r - R2) / n2));
  result.centers[0] = cc + off;
  result.centers[1] = cc - off;
  result.count = 2;
  result.status = TrisphereResult::Status::kTwoCenters;
  return result;
}

}  // namespace ballfit::geom
