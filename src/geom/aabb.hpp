#pragma once

/// \file aabb.hpp
/// Axis-aligned bounding boxes, used by the spatial grid and the SDF models.

#include <algorithm>
#include <limits>

#include "geom/vec3.hpp"

namespace ballfit::geom {

struct Aabb {
  Vec3 min{std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity()};
  Vec3 max{-std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};

  constexpr Aabb() = default;
  constexpr Aabb(const Vec3& lo, const Vec3& hi) : min(lo), max(hi) {}

  bool empty() const {
    return min.x > max.x || min.y > max.y || min.z > max.z;
  }

  void expand(const Vec3& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    min.z = std::min(min.z, p.z);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
    max.z = std::max(max.z, p.z);
  }

  /// Grows the box by `margin` on every side.
  Aabb inflated(double margin) const {
    Vec3 m{margin, margin, margin};
    return {min - m, max + m};
  }

  bool contains(const Vec3& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y &&
           p.z >= min.z && p.z <= max.z;
  }

  Vec3 extent() const { return max - min; }
  Vec3 center() const { return (min + max) * 0.5; }

  double volume() const {
    if (empty()) return 0.0;
    Vec3 e = extent();
    return e.x * e.y * e.z;
  }
};

}  // namespace ballfit::geom
