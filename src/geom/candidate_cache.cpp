#include "geom/candidate_cache.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ballfit::geom {

void CandidateCache::rebuild(const std::vector<Vec3>& points,
                             std::size_t focus) {
  BALLFIT_REQUIRE(focus < points.size(),
                  "CandidateCache focus out of range");
  const std::size_t n = points.size();
  const Vec3& f = points[focus];

  // Contiguous (dist², index) keys sort markedly faster than an indirect
  // index sort chasing a side array. Pair comparison orders by distance
  // first, index second — the deterministic tie-break for free.
  sort_keys_.clear();
  sort_keys_.reserve(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == focus) continue;
    sort_keys_.emplace_back(points[i].distance_sq_to(f),
                            static_cast<std::uint32_t>(i));
  }
  std::sort(sort_keys_.begin(), sort_keys_.end());

  const std::size_t m = sort_keys_.size();
  xs_.resize(m);
  ys_.resize(m);
  zs_.resize(m);
  dist_sq_.resize(m);
  orig_.resize(m);
  slot_of_.assign(n, kNoSlot);
  for (std::size_t slot = 0; slot < m; ++slot) {
    const auto& [d2, i] = sort_keys_[slot];
    const Vec3& p = points[i];
    xs_[slot] = p.x;
    ys_[slot] = p.y;
    zs_[slot] = p.z;
    dist_sq_[slot] = d2;
    orig_[slot] = i;
    slot_of_[i] = static_cast<std::uint32_t>(slot);
  }
}

}  // namespace ballfit::geom
