#pragma once

/// \file trisphere.hpp
/// The geometric kernel of Unit Ball Fitting: given three points and a
/// radius r, find the centers of all spheres of radius exactly r whose
/// surface passes through all three points — Eq. (1) of the paper.
///
/// Geometry: the three points define a (possibly degenerate) triangle. Any
/// sphere through all three has its center on the line through the
/// triangle's circumcenter, perpendicular to the triangle plane. With
/// circumradius R, a radius-r sphere exists iff R <= r, giving centers
///   c = circumcenter ± sqrt(r² − R²) · n̂.
/// Two solutions in general, one when R == r (center in-plane), zero when
/// the points are too spread out (R > r) or collinear.

#include <array>
#include <cstdint>

#include "geom/vec3.hpp"

namespace ballfit::geom {

/// Result of the trisphere solve: up to two candidate centers.
struct TrisphereResult {
  std::array<Vec3, 2> centers{};
  int count = 0;  ///< 0, 1 or 2 valid entries in `centers`.

  /// Why the solve produced fewer than two centers (for diagnostics/tests).
  enum class Status : std::uint8_t {
    kTwoCenters,   ///< generic case, R < r
    kOneCenter,    ///< tangent case, R == r (within tolerance)
    kTooSpread,    ///< circumradius exceeds r — no fitting sphere
    kCollinear,    ///< points (nearly) collinear — circumcenter undefined
  };
  Status status = Status::kTooSpread;
};

/// Solves Eq. (1): centers (x,y,z) with |c−a| = |c−b| = |c−d| = r.
///
/// `tol` controls the degeneracy thresholds: triangles whose doubled area is
/// below `tol * (scale of the inputs)` are treated as collinear, and
/// `R ∈ [r − tol, r]` collapses the two mirrored centers into one.
TrisphereResult solve_trisphere(const Vec3& a, const Vec3& b, const Vec3& d,
                                double r, double tol = 1e-12);

/// Circumcenter and circumradius of triangle (a, b, d) in its own plane.
/// Returns false for (nearly) collinear input.
bool triangle_circumcircle(const Vec3& a, const Vec3& b, const Vec3& d,
                           Vec3& center, double& radius, Vec3& unit_normal,
                           double tol = 1e-12);

}  // namespace ballfit::geom
