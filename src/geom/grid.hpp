#pragma once

/// \file grid.hpp
/// Uniform spatial hash grid over a fixed point set.
///
/// The network builder uses it to compute unit-disk adjacency in O(n·ρ)
/// instead of O(n²), and samplers use it for blue-noise style minimum
/// distance rejection. Points are immutable after construction; the grid
/// stores indices into the caller's array.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace ballfit::geom {

class SpatialGrid {
 public:
  /// Builds a grid over `points` with cubic cells of edge `cell_size`, in
  /// the same length units as the points (radio-range units everywhere in
  /// this repo). `cell_size` is typically the query radius so a radius
  /// query touches at most 27 cells; it must be > 0.
  SpatialGrid(const std::vector<Vec3>& points, double cell_size);

  /// Indices of all points p with |p − q| <= radius (same units as the
  /// points; the comparison is inclusive, matching unit-disk adjacency).
  std::vector<std::uint32_t> query_radius(const Vec3& q, double radius) const;

  /// Visits all points within `radius` of `q` without allocating.
  template <typename Fn>
  void for_each_in_radius(const Vec3& q, double radius, Fn&& fn) const {
    for_each_in_ball(q, radius, [&](std::uint32_t idx) {
      fn(idx);
      return true;
    });
  }

  /// Radius-bounded visitor with early exit: visits points p with
  /// |p − q| <= radius until `fn(idx)` returns false. Returns false iff a
  /// visit stopped the walk (i.e. the ball is known non-empty to the
  /// caller), true when every point in the ball was visited. No temporary
  /// vectors — this is the hot-path form of `query_radius`.
  template <typename Fn>
  bool for_each_in_ball(const Vec3& q, double radius, Fn&& fn) const {
    const double r2 = radius * radius;
    const CellKey lo = key_for(q - Vec3{radius, radius, radius});
    const CellKey hi = key_for(q + Vec3{radius, radius, radius});
    for (std::int64_t cx = lo.x; cx <= hi.x; ++cx)
      for (std::int64_t cy = lo.y; cy <= hi.y; ++cy)
        for (std::int64_t cz = lo.z; cz <= hi.z; ++cz) {
          auto it = cells_.find(hash_key({cx, cy, cz}));
          if (it == cells_.end()) continue;
          for (std::uint32_t idx : it->second) {
            if ((*points_)[idx].distance_sq_to(q) <= r2 && !fn(idx)) {
              return false;
            }
          }
        }
    return true;
  }

  /// Index of the nearest point to `q`, or -1 when the grid is empty.
  /// Searches expanding shells of cells, so it is exact.
  std::int64_t nearest(const Vec3& q) const;

  std::size_t size() const { return points_->size(); }
  double cell_size() const { return cell_size_; }

 private:
  struct CellKey {
    std::int64_t x, y, z;
  };

  CellKey key_for(const Vec3& p) const {
    return {static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
            static_cast<std::int64_t>(std::floor(p.y / cell_size_)),
            static_cast<std::int64_t>(std::floor(p.z / cell_size_))};
  }

  static std::uint64_t hash_key(const CellKey& k) {
    // Exact packed key: 21 bits per axis with a 2^20 offset. Cell
    // coordinates are bounded by |c| < 2^20 for any realistic scene
    // (checked below), so two distinct cells never share a key — a collision
    // here would silently merge cells and produce duplicate query results.
    constexpr std::int64_t kBias = 1 << 20;
    BALLFIT_ASSERT_MSG(k.x > -kBias && k.x < kBias && k.y > -kBias &&
                           k.y < kBias && k.z > -kBias && k.z < kBias,
                       "SpatialGrid cell coordinate out of packable range");
    const auto ux = static_cast<std::uint64_t>(k.x + kBias);
    const auto uy = static_cast<std::uint64_t>(k.y + kBias);
    const auto uz = static_cast<std::uint64_t>(k.z + kBias);
    return ux | (uy << 21) | (uz << 42);
  }

  const std::vector<Vec3>* points_;
  double cell_size_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
};

}  // namespace ballfit::geom
